"""Axiomatic memory-model checker (Alglave-style happens-before).

Candidate executions of a litmus program are enumerated by choosing,
for each read, the write it reads from (``rf``) and, per location, a
total coherence order over the writes (``co``); derived from these is
the from-read relation ``fr = rf⁻¹ ; co``.  A candidate is allowed
when:

* **sc-per-location** (uniproc): ``po-loc ∪ rf ∪ co ∪ fr`` is acyclic;
* **atomicity**: for every locked read-modify-write, no other write to
  the same address falls in coherence order between the write the RMW
  read from and the write it performed;
* **no-thin-air** is trivial here (no data-dependent values);
* the **global happens-before** relation is acyclic, where::

      ghb = ppo ∪ grf ∪ co ∪ fr

  with each model's preserved-program-order and global-read-from
  *predicates* resolved from the model registry
  (:mod:`repro.models`) — SC keeps everything; 370/x86 relax st→ld
  (370 keeps rfi global, x86 does not — exactly the paper's Figure 2
  forwarding distinction); WMM keeps only ld→st plus whatever fences,
  acquire loads, release stores and locked instructions restore.

Locked instructions (xchg / cas) contribute two events — a read
``(tid, idx)`` and a write ``(tid, idx, 1)`` — tied by the atomicity
axiom.  A cas whose read sees a value other than ``expect`` performs
no write: its write event is *inactive*, excluded from ``co`` and
unusable as an rf source.

This checker and the lint relation analysis
(:mod:`repro.lint.memory_model`) evaluate the same registry predicates
but are otherwise independent (full-transitive-closure DFS here vs
immediate-edge Kahn peel there); the operational machines are the
third, fully independent oracle.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.litmus.program import (Cas, Ld, Outcome, Program, Rmw, St)
from repro.models import get_model, model_names, po_access_pairs
from repro.models.base import Event, PoPair

SC = "SC"
M370 = "370"
X86 = "x86"
WMM = "WMM"


class _Execution:
    """One candidate execution: events plus chosen rf and co."""

    def __init__(self, program: Program) -> None:
        self.program = program
        #: (event, op) — Ld plus the read half of every locked op.
        self.reads: List[Tuple[Event, object]] = []
        #: (event, op) — St plus the write half of every locked op.
        self.writes: List[Tuple[Event, object]] = []
        #: (read event, write event, op) per locked instruction.
        self.locked: List[Tuple[Event, Event, object]] = []
        self.init_events: Dict[str, Event] = {}
        self.addr_of: Dict[Event, str] = {}
        self.value_of: Dict[Event, int] = {}
        for ordinal, addr in enumerate(program.addresses):
            event = (-1, ordinal)
            self.init_events[addr] = event
            self.addr_of[event] = addr
            self.value_of[event] = program.initial_value(addr)
        for tid, thread in enumerate(program.threads):
            for idx, op in enumerate(thread):
                if isinstance(op, Ld):
                    event = (tid, idx)
                    self.reads.append((event, op))
                    self.addr_of[event] = op.addr
                elif isinstance(op, St):
                    event = (tid, idx)
                    self.writes.append((event, op))
                    self.addr_of[event] = op.addr
                    self.value_of[event] = op.value
                elif isinstance(op, (Rmw, Cas)):
                    read, write = (tid, idx), (tid, idx, 1)
                    self.reads.append((read, op))
                    self.writes.append((write, op))
                    self.locked.append((read, write, op))
                    self.addr_of[read] = op.addr
                    self.addr_of[write] = op.addr
                    self.value_of[write] = op.value
        self.po_pairs: List[PoPair] = list(po_access_pairs(program))
        self.rf: Dict[Event, Event] = {}         # read -> write
        self.co: Dict[str, List[Event]] = {}     # addr -> ordered writes
        self.active: Set[Event] = set()          # writes that happen

    def compute_active(self) -> bool:
        """Given ``rf``, mark each write active (a failed cas performs
        no write); False when some read sources an inactive write."""
        self.active = {event for event, op in self.writes}
        for read, write, op in self.locked:
            if isinstance(op, Cas) and \
                    self.value_of[self.rf[read]] != op.expect:
                self.active.discard(write)
        return all(source[0] < 0 or source in self.active
                   for source in self.rf.values())

    def atomicity_holds(self) -> bool:
        """No write intervenes in co between a locked read's source and
        the locked write (the write must be the immediate successor)."""
        successor: Dict[Event, Event] = {}
        for addr, order in self.co.items():
            chain = [self.init_events[addr]] + order
            for a, b in zip(chain, chain[1:]):
                successor[a] = b
        for read, write, _op in self.locked:
            if write in self.active and \
                    successor.get(self.rf[read]) != write:
                return False
        return True


def _acyclic(edges: Set[Tuple[Event, Event]]) -> bool:
    graph: Dict[Event, List[Event]] = {}
    nodes: Set[Event] = set()
    for a, b in edges:
        graph.setdefault(a, []).append(b)
        nodes.add(a)
        nodes.add(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in nodes}
    for root in nodes:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[Event, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, child_idx = stack[-1]
            children = graph.get(node, ())
            if child_idx < len(children):
                stack[-1] = (node, child_idx + 1)
                child = children[child_idx]
                if color[child] == GRAY:
                    return False
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return True


def _rf_kind(source: Event, read: Event) -> str:
    if source[0] < 0:
        return "rf-init"
    return "rfi" if source[0] == read[0] else "rfe"


def _model_edges(execution: _Execution, model_name: str
                 ) -> Tuple[Set[Tuple[Event, Event]],
                            Set[Tuple[Event, Event]]]:
    """Returns (uniproc_edges, ghb_edges) for the candidate."""
    axiomatic = get_model(model_name).axiomatic
    active = execution.active

    rf_edges = {(source, read)
                for read, source in execution.rf.items()}
    co_edges: Set[Tuple[Event, Event]] = set()
    for addr, order in execution.co.items():
        chain = [execution.init_events[addr]] + order
        # Transitive closure of co (orders are short).
        for i, a in enumerate(chain):
            for b in chain[i + 1:]:
                co_edges.add((a, b))
    # fr: for each read of s, fr to every write co-after s.
    fr_edges: Set[Tuple[Event, Event]] = set()
    co_after: Dict[Event, Set[Event]] = {}
    for a, b in co_edges:
        co_after.setdefault(a, set()).add(b)
    for read, source in execution.rf.items():
        for later in co_after.get(source, ()):
            fr_edges.add((read, later))

    ppo: Set[Tuple[Event, Event]] = set()
    po_loc: Set[Tuple[Event, Event]] = set()
    for pair in execution.po_pairs:
        # Pairs touching an inactive (failed-cas) write are not events
        # of this candidate.
        if (pair.a_store and pair.a not in active) or \
                (pair.b_store and pair.b not in active):
            continue
        if pair.same_addr:
            po_loc.add((pair.a, pair.b))
        if axiomatic.ppo(pair):
            ppo.add((pair.a, pair.b))

    grf = {(source, read) for source, read in rf_edges
           if axiomatic.grf(_rf_kind(source, read))}

    uniproc = po_loc | rf_edges | co_edges | fr_edges
    ghb = ppo | grf | co_edges | fr_edges
    return uniproc, ghb


def _outcome_of(execution: _Execution) -> Outcome:
    regs = []
    for read_event, op in execution.reads:
        source = execution.rf[read_event]
        regs.append(((read_event[0], op.reg),
                     execution.value_of[source]))
    mem = []
    for addr in execution.program.addresses:
        order = execution.co.get(addr, [])
        last = order[-1] if order else execution.init_events[addr]
        mem.append((addr, execution.value_of[last]))
    return Outcome(registers=tuple(sorted(regs)),
                   memory=tuple(sorted(mem)))


def enumerate_axiomatic(program: Program, model: str) -> FrozenSet[Outcome]:
    """All outcomes whose candidate executions satisfy the model axioms."""
    if model not in model_names(axiomatic_only=True):
        raise ValueError(
            f"no axiomatic definition for model {model!r}; "
            f"axiomatic models: "
            f"{', '.join(model_names(axiomatic_only=True))}")
    execution = _Execution(program)

    # rf choices per read: any same-address write (or the initial one).
    rf_choices: List[List[Event]] = []
    for read_event, op in execution.reads:
        sources = [execution.init_events[op.addr]]
        sources += [event for event, write in execution.writes
                    if write.addr == op.addr]
        rf_choices.append(sources)

    addr_writes: Dict[str, List[Event]] = {}
    for event, write in execution.writes:
        addr_writes.setdefault(write.addr, []).append(event)

    outcomes: Set[Outcome] = set()
    for rf_pick in itertools.product(*rf_choices) if rf_choices else [()]:
        execution.rf = {read_event: src for (read_event, _), src
                        in zip(execution.reads, rf_pick)}
        if not execution.compute_active():
            continue   # a read sources a write that never happens
        # co choices per address: permutations of its *active* writes.
        co_addrs = sorted(addr_writes)
        co_choices = [
            list(itertools.permutations(
                [e for e in addr_writes[a] if e in execution.active]))
            for a in co_addrs]
        for co_pick in itertools.product(*co_choices) if co_choices else [()]:
            execution.co = {addr: list(order)
                            for addr, order in zip(co_addrs, co_pick)}
            if not execution.atomicity_holds():
                continue
            uniproc, ghb = _model_edges(execution, model)
            if _acyclic(uniproc) and _acyclic(ghb):
                outcomes.add(_outcome_of(execution))
    return frozenset(outcomes)
