"""Happens-before explanations for forbidden litmus outcomes.

The paper's figures argue forbidden executions by exhibiting a cycle of
happens-before edges (po, rf, fr, ws/co).  This module automates that:
given a program, a model, and a witness condition, it finds the
candidate execution(s) matching the witness and prints the global
happens-before cycle that rules each of them out — or reports that the
outcome is allowed.

Edge labels:

* ``po``/``ppo`` — (preserved) program order; ``po(relaxed)`` marks a
  pair the model drops from ghb.
* ``fence`` — a program-order pair kept *only* because of the barrier
  crossed (mfence/lwfence or a locked instruction's fence semantics).
* ``rfi``/``rfe``/``rf(init)`` — read-from, internal/external/initial.
* ``co``/``fr`` — coherence and from-read.
* ``atom`` — RMW atomicity: the locked write must immediately follow
  the read's source in coherence order; a violating candidate shows
  the three-edge cycle  R --fr--> X --co--> W --atom--> R.

Example (the paper's Figure 2 argument, generated)::

    >>> from repro.litmus import N6
    >>> from repro.litmus.explain import explain
    >>> print(explain(N6, "370", r0_rx=1, r0_ry=0, mem_x=1, mem_y=2))
    n6 under 370: rx=1 ... FORBIDDEN ... cycle: ... rfi ... fr ... co ...
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.litmus.axiomatic import _Execution, _outcome_of, _rf_kind
from repro.litmus.operational import _matches
from repro.litmus.program import LOCKED, Program
from repro.models import get_model, model_names
from repro.models.base import AxiomaticDef, Event

LabeledEdge = Tuple[Event, Event, str]


def _event_name(program: Program, event: Event) -> str:
    tid = event[0]
    if tid < 0:
        return f"init[{program.addresses[event[1]]}]"
    op = program.threads[tid][event[1]]
    if isinstance(op, LOCKED):
        half = "W" if len(event) == 3 else "R"
        return f"T{tid}:{op} [{half}]"
    return f"T{tid}:{op}"


def _labeled_edges(execution: _Execution,
                   axiomatic: AxiomaticDef, sc: bool) -> List[LabeledEdge]:
    """All candidate-execution edges with their relation names."""
    edges: List[LabeledEdge] = []

    for read, source in execution.rf.items():
        kind = _rf_kind(source, read)
        edges.append((source, read,
                      "rf(init)" if kind == "rf-init" else kind))

    co_pairs: Set[Tuple[Event, Event]] = set()
    for addr, order in execution.co.items():
        chain = [execution.init_events[addr]] + order
        for i, a in enumerate(chain):
            for b in chain[i + 1:]:
                co_pairs.add((a, b))
                edges.append((a, b, "co"))

    co_after: Dict[Event, Set[Event]] = {}
    for a, b in co_pairs:
        co_after.setdefault(a, set()).add(b)
    for read, source in execution.rf.items():
        for later in co_after.get(source, ()):
            edges.append((read, later, "fr"))

    for pair in execution.po_pairs:
        if (pair.a_store and pair.a not in execution.active) or \
                (pair.b_store and pair.b not in execution.active):
            continue
        if not axiomatic.ppo(pair):
            edges.append((pair.a, pair.b, "po(relaxed)"))
        elif pair.fence and not axiomatic.ppo(pair.without_fence()):
            edges.append((pair.a, pair.b, "fence"))
        else:
            edges.append((pair.a, pair.b, "po" if sc else "ppo"))
    return edges


def _ghb_subset(edges: List[LabeledEdge],
                axiomatic: AxiomaticDef) -> List[LabeledEdge]:
    ghb = []
    for a, b, kind in edges:
        if kind in ("co", "fr", "ppo", "po", "fence"):
            ghb.append((a, b, kind))
        elif kind.startswith("rf"):
            # The crux of the paper: forwarding (rfi) participates in
            # global happens-before only under store-atomic models.
            if axiomatic.grf("rf-init" if kind == "rf(init)" else kind):
                ghb.append((a, b, kind))
    return ghb


def _atomicity_cycle(execution: _Execution
                     ) -> Optional[List[LabeledEdge]]:
    """The R --fr--> X --co--> W --atom--> R triangle of the first
    violated locked instruction, if any."""
    successor: Dict[Event, Event] = {}
    for addr, order in execution.co.items():
        chain = [execution.init_events[addr]] + order
        for a, b in zip(chain, chain[1:]):
            successor[a] = b
    for read, write, _op in execution.locked:
        if write not in execution.active:
            continue
        intervening = successor.get(execution.rf[read])
        if intervening != write:
            return [(read, intervening, "fr"),
                    (intervening, write, "co"),
                    (write, read, "atom")]
    return None


def _find_cycle(edges: List[LabeledEdge]) -> Optional[List[LabeledEdge]]:
    graph: Dict[Event, List[Tuple[Event, str]]] = {}
    for a, b, kind in edges:
        graph.setdefault(a, []).append((b, kind))

    state: Dict[Event, int] = {}
    path: List[LabeledEdge] = []

    def dfs(node: Event) -> Optional[List[LabeledEdge]]:
        state[node] = 1
        for nxt, kind in graph.get(node, ()):
            if state.get(nxt, 0) == 1:
                cycle = path + [(node, nxt, kind)]
                # Trim to the cycle proper.
                for i, (a, _, _) in enumerate(cycle):
                    if a == nxt:
                        return cycle[i:]
                return cycle
            if state.get(nxt, 0) == 0:
                path.append((node, nxt, kind))
                found = dfs(nxt)
                if found:
                    return found
                path.pop()
        state[node] = 2
        return None

    for node in list(graph):
        if state.get(node, 0) == 0:
            found = dfs(node)
            if found:
                return found
    return None


def explain_chain(program: Program, model: str,
                  **conditions: int) -> Optional[str]:
    """Communication-chain view of a forbidden witness, computed by the
    static relation analysis (:mod:`repro.lint.memory_model`).

    Returns None when no outcome matching the witness conditions is
    forbidden under ``model``.  The chain strips the witness cycle down
    to its rf/fr/co (plus fence and RMW-atomicity) edges — the
    inter-thread communication the cycle actually rides on — and, when
    the cycle hinges on a forwarding (rfi) edge, notes whether x86-TSO
    (which does not order rfi globally) admits the same outcome: this
    is the paper's Figure 2 store-atomicity distinction, derived rather
    than hand-written.
    """
    from repro.lint.memory_model import classify

    verdict = classify(program, model)
    matching = [o for o in sorted(verdict.forbidden,
                                  key=lambda o: (o.registers, o.memory))
                if _matches(o, conditions)]
    if not matching:
        return None
    lines: List[str] = []
    for outcome in matching:
        witness = verdict.witnesses[outcome]
        comm = witness.communication_edges()
        lines.append(f"  communication chain ({witness.axiom} cycle, "
                     f"{len(witness.edges)} edges total):")
        for edge in comm:
            lines.append(f"    {_event_name(program, edge.src)}"
                         f"  --{edge.kind}-->  "
                         f"{_event_name(program, edge.dst)}")
        if model != "x86" and witness.has_kind("rfi"):
            x86_verdict = classify(program, "x86")
            if outcome in x86_verdict.allowed:
                rfi = next(e for e in comm if e.kind == "rfi")
                lines.append(
                    f"    note: x86-TSO drops the forwarding edge "
                    f"{_event_name(program, rfi.src)} --rfi--> "
                    f"{_event_name(program, rfi.dst)} from global "
                    f"happens-before; the same outcome is ALLOWED there.")
    return "\n".join(lines)


def explain(program: Program, model: str, **conditions: int) -> str:
    """Explain why a witness outcome is forbidden (or that it is not).

    Enumerates the candidate executions consistent with the witness and
    renders the happens-before (or atomicity) cycle that invalidates
    each; if some candidate passes the model's axioms, reports the
    outcome as allowed.
    """
    axiomatic_models = model_names(axiomatic_only=True)
    if model not in axiomatic_models:
        raise ValueError(f"explain supports the axiomatic models "
                         f"({', '.join(axiomatic_models)})")
    axiomatic = get_model(model).axiomatic
    execution = _Execution(program)
    witness = ", ".join(f"{k}={v}" for k, v in conditions.items())
    header = f"{program.name} under {model}: witness [{witness}]"

    rf_choices = []
    for read_event, op in execution.reads:
        sources = [execution.init_events[op.addr]]
        sources += [event for event, write in execution.writes
                    if write.addr == op.addr]
        rf_choices.append(sources)
    addr_writes: Dict[str, List[Event]] = {}
    for event, write in execution.writes:
        addr_writes.setdefault(write.addr, []).append(event)
    co_addrs = sorted(addr_writes)

    explanations: List[str] = []
    candidates = 0
    for rf_pick in itertools.product(*rf_choices) if rf_choices else [()]:
        execution.rf = {event: src for (event, _), src
                        in zip(execution.reads, rf_pick)}
        if not execution.compute_active():
            continue
        co_choices = [
            list(itertools.permutations(
                [e for e in addr_writes[a] if e in execution.active]))
            for a in co_addrs]
        for co_pick in (itertools.product(*co_choices)
                        if co_choices else [()]):
            execution.co = {addr: list(order)
                            for addr, order in zip(co_addrs, co_pick)}
            if not _matches(_outcome_of(execution), conditions):
                continue
            candidates += 1
            cycle = _atomicity_cycle(execution)
            if cycle is None:
                edges = _labeled_edges(execution, axiomatic,
                                       sc=(model == "SC"))
                # SC-per-location (uniproc) first: po-loc + rf + co + fr.
                uniproc = [(a, b, k) for a, b, k in edges
                           if k in ("co", "fr") or k.startswith("rf")]
                for pair in execution.po_pairs:
                    if pair.same_addr and \
                            (not pair.a_store
                             or pair.a in execution.active) and \
                            (not pair.b_store
                             or pair.b in execution.active):
                        uniproc.append((pair.a, pair.b, "po-loc"))
                cycle = _find_cycle(uniproc)
                if cycle is None:
                    ghb = _ghb_subset(edges, axiomatic)
                    cycle = _find_cycle(ghb)
            if cycle is None:
                return (f"{header}\n  ALLOWED: a candidate execution "
                        f"satisfies all {model} axioms.")
            rendered = "\n".join(
                f"    {_event_name(program, a)}  --{kind}-->  "
                f"{_event_name(program, b)}"
                for a, b, kind in cycle)
            explanations.append(
                f"  candidate {candidates}: global happens-before "
                f"cycle\n{rendered}")
    if candidates == 0:
        return (f"{header}\n  UNREACHABLE: no read-from assignment "
                f"produces these values.")
    body = "\n".join(explanations)
    chain = explain_chain(program, model, **conditions)
    if chain is not None:
        body += "\n" + chain
    return (f"{header}\n  FORBIDDEN: every matching candidate execution "
            f"is cyclic.\n" + body)
