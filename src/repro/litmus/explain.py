"""Happens-before explanations for forbidden litmus outcomes.

The paper's figures argue forbidden executions by exhibiting a cycle of
happens-before edges (po, rf, fr, ws/co).  This module automates that:
given a program, a model, and a witness condition, it finds the
candidate execution(s) matching the witness and prints the global
happens-before cycle that rules each of them out — or reports that the
outcome is allowed.

Example (the paper's Figure 2 argument, generated)::

    >>> from repro.litmus import N6
    >>> from repro.litmus.explain import explain
    >>> print(explain(N6, "370", r0_rx=1, r0_ry=0, mem_x=1, mem_y=2))
    n6 under 370: rx=1 ... FORBIDDEN ... cycle: ... rfi ... fr ... co ...
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.litmus.axiomatic import (_Execution, _acyclic, _load_addr,
                                    _outcome_of, _po_pairs)
from repro.litmus.operational import _matches
from repro.litmus.program import Ld, Program, St

Event = Tuple[int, int]
LabeledEdge = Tuple[Event, Event, str]


def _event_name(program: Program, event: Event) -> str:
    tid, idx = event
    if tid < 0:
        return f"init[{program.addresses[idx]}]"
    op = program.threads[tid][idx]
    return f"T{tid}:{op}"


def _labeled_edges(execution: _Execution, model: str) -> List[LabeledEdge]:
    """All candidate-execution edges with their relation names."""
    program = execution.program
    is_store = {event for event, _ in execution.stores}
    edges: List[LabeledEdge] = []

    for load, store in execution.rf.items():
        kind = "rf(init)" if store[0] < 0 else (
            "rfi" if store[0] == load[0] else "rfe")
        edges.append((store, load, kind))

    co_pairs: Set[Tuple[Event, Event]] = set()
    for addr, order in execution.co.items():
        chain = [execution.init_events[addr]] + order
        for i, a in enumerate(chain):
            for b in chain[i + 1:]:
                co_pairs.add((a, b))
                edges.append((a, b, "co"))

    co_after: Dict[Event, Set[Event]] = {}
    for a, b in co_pairs:
        co_after.setdefault(a, set()).add(b)
    for load, store in execution.rf.items():
        for later in co_after.get(store, ()):
            edges.append((load, later, "fr"))

    for a, b, crosses_fence in _po_pairs(program):
        relaxed = (a in is_store) and (b not in is_store)
        if model == "SC" or not relaxed or crosses_fence:
            edges.append((a, b, "ppo" if model != "SC" else "po"))
        else:
            edges.append((a, b, "po(st->ld, relaxed)"))
    return edges


def _ghb_subset(edges: List[LabeledEdge], model: str) -> List[LabeledEdge]:
    ghb = []
    for a, b, kind in edges:
        if kind in ("co", "fr", "ppo", "po"):
            ghb.append((a, b, kind))
        elif kind in ("rfe", "rf(init)"):
            ghb.append((a, b, kind))
        elif kind == "rfi" and model != "x86":
            # The crux of the paper: forwarding (rfi) participates in
            # global happens-before only under store-atomic models.
            ghb.append((a, b, kind))
    return ghb


def _find_cycle(edges: List[LabeledEdge]) -> Optional[List[LabeledEdge]]:
    graph: Dict[Event, List[Tuple[Event, str]]] = {}
    for a, b, kind in edges:
        graph.setdefault(a, []).append((b, kind))

    state: Dict[Event, int] = {}
    path: List[LabeledEdge] = []

    def dfs(node: Event) -> Optional[List[LabeledEdge]]:
        state[node] = 1
        for nxt, kind in graph.get(node, ()):
            if state.get(nxt, 0) == 1:
                cycle = path + [(node, nxt, kind)]
                # Trim to the cycle proper.
                for i, (a, _, _) in enumerate(cycle):
                    if a == nxt:
                        return cycle[i:]
                return cycle
            if state.get(nxt, 0) == 0:
                path.append((node, nxt, kind))
                found = dfs(nxt)
                if found:
                    return found
                path.pop()
        state[node] = 2
        return None

    for node in list(graph):
        if state.get(node, 0) == 0:
            found = dfs(node)
            if found:
                return found
    return None


def explain_chain(program: Program, model: str,
                  **conditions: int) -> Optional[str]:
    """Communication-chain view of a forbidden witness, computed by the
    static relation analysis (:mod:`repro.lint.memory_model`).

    Returns None when no outcome matching the witness conditions is
    forbidden under ``model`` (or the program uses operations the
    relation analysis does not model, e.g. RMWs).  The chain strips the
    witness cycle down to its rf/fr/co edges — the inter-thread
    communication the cycle actually rides on — and, when the cycle
    hinges on a forwarding (rfi) edge, notes whether x86-TSO (which
    does not order rfi globally) admits the same outcome: this is the
    paper's Figure 2 store-atomicity distinction, derived rather than
    hand-written.
    """
    from repro.lint.memory_model import classify

    try:
        verdict = classify(program, model)
    except NotImplementedError:
        return None
    matching = [o for o in sorted(verdict.forbidden,
                                  key=lambda o: (o.registers, o.memory))
                if _matches(o, conditions)]
    if not matching:
        return None
    lines: List[str] = []
    for outcome in matching:
        witness = verdict.witnesses[outcome]
        comm = witness.communication_edges()
        lines.append(f"  communication chain ({witness.axiom} cycle, "
                     f"{len(witness.edges)} edges total):")
        for edge in comm:
            lines.append(f"    {_event_name(program, edge.src)}"
                         f"  --{edge.kind}-->  "
                         f"{_event_name(program, edge.dst)}")
        if model != "x86" and witness.has_kind("rfi"):
            x86_verdict = classify(program, "x86")
            if outcome in x86_verdict.allowed:
                rfi = next(e for e in comm if e.kind == "rfi")
                lines.append(
                    f"    note: x86-TSO drops the forwarding edge "
                    f"{_event_name(program, rfi.src)} --rfi--> "
                    f"{_event_name(program, rfi.dst)} from global "
                    f"happens-before; the same outcome is ALLOWED there.")
    return "\n".join(lines)


def explain(program: Program, model: str, **conditions: int) -> str:
    """Explain why a witness outcome is forbidden (or that it is not).

    Enumerates the candidate executions consistent with the witness and
    renders the happens-before cycle that invalidates each; if some
    candidate passes the model's axioms, reports the outcome as
    allowed.
    """
    if model not in ("SC", "370", "x86"):
        raise ValueError("explain supports the axiomatic models "
                         "(SC, 370, x86)")
    execution = _Execution(program)
    witness = ", ".join(f"{k}={v}" for k, v in conditions.items())
    header = f"{program.name} under {model}: witness [{witness}]"

    rf_choices = []
    for load_event, op in execution.loads:
        sources = [execution.init_events[op.addr]]
        sources += [event for event, store in execution.stores
                    if store.addr == op.addr]
        rf_choices.append(sources)
    addr_stores: Dict[str, List[Event]] = {}
    for event, store in execution.stores:
        addr_stores.setdefault(store.addr, []).append(event)
    co_addrs = sorted(addr_stores)
    co_choices = [list(itertools.permutations(addr_stores[a]))
                  for a in co_addrs]

    explanations: List[str] = []
    candidates = 0
    for rf_pick in itertools.product(*rf_choices) if rf_choices else [()]:
        execution.rf = {event: src for (event, _), src
                        in zip(execution.loads, rf_pick)}
        for co_pick in (itertools.product(*co_choices)
                        if co_choices else [()]):
            execution.co = {addr: list(order)
                            for addr, order in zip(co_addrs, co_pick)}
            if not _matches(_outcome_of(execution), conditions):
                continue
            candidates += 1
            edges = _labeled_edges(execution, model)
            # SC-per-location (uniproc) first: po-loc + rf + co + fr.
            addr_of = execution.addr_of
            uniproc = [(a, b, k) for a, b, k in edges
                       if k in ("co", "fr") or k.startswith("rf")]
            for a, b, crosses in _po_pairs(program):
                addr_a = addr_of.get(a, _load_addr(program, a))
                addr_b = addr_of.get(b, _load_addr(program, b))
                if addr_a == addr_b:
                    uniproc.append((a, b, "po-loc"))
            cycle = _find_cycle(uniproc)
            if cycle is None:
                ghb = _ghb_subset(edges, model)
                cycle = _find_cycle(ghb)
            if cycle is None:
                return (f"{header}\n  ALLOWED: a candidate execution "
                        f"satisfies all {model} axioms.")
            rendered = "\n".join(
                f"    {_event_name(program, a)}  --{kind}-->  "
                f"{_event_name(program, b)}"
                for a, b, kind in cycle)
            explanations.append(
                f"  candidate {candidates}: global happens-before "
                f"cycle\n{rendered}")
    if candidates == 0:
        return (f"{header}\n  UNREACHABLE: no read-from assignment "
                f"produces these values.")
    body = "\n".join(explanations)
    chain = explain_chain(program, model, **conditions)
    if chain is not None:
        body += "\n" + chain
    return (f"{header}\n  FORBIDDEN: every matching candidate execution "
            f"is cyclic.\n" + body)
