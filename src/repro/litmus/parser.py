"""Text format for litmus tests (a simplified litmus7 dialect).

Example::

    name: my-mp
    init: x=0 y=0

    T0:
      ld x -> rx
      ld y -> ry

    T1:
      st y,1
      mfence
      st x,1

    exists: r0_rx=1 r0_ry=0

Instructions:

==============================  =======================================
``ld ADDR -> REG``              load ADDR into REG
``ld.acq ADDR -> REG``          acquire load (orders later accesses)
``st ADDR,VALUE``               store VALUE to ADDR
``st.rel ADDR,VALUE``           release store (orders earlier accesses)
``mfence``                      full fence (drains the store buffer)
``lwfence``                     lightweight fence (all orders but st→ld)
``xchg ADDR,VALUE -> REG``      atomic exchange (locked RMW)
``cas ADDR,EXPECT,VALUE -> REG``  compare-and-swap (locked; writes only
                                when the old value equals EXPECT)
==============================  =======================================

The optional ``exists:`` clause names the witness condition in the same
``key=value`` syntax the :func:`repro.litmus.operational.allows` API
uses (``rT_REG`` for registers, ``mem_ADDR`` for final memory).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.litmus.program import (Cas, Fence, Instruction, Ld, Program, Rmw,
                                  St, make_program)


class LitmusParseError(ValueError):
    """Malformed litmus source text."""


_NAME_RE = re.compile(r"^name:\s*(\S+)\s*$")
_INIT_RE = re.compile(r"^init:\s*(.*)$")
_THREAD_RE = re.compile(r"^T(\d+):\s*$")
_EXISTS_RE = re.compile(r"^exists:\s*(.*)$")
_LD_RE = re.compile(r"^ld(\.acq)?\s+(\w+)\s*->\s*(\w+)$")
_ST_RE = re.compile(r"^st(\.rel)?\s+(\w+)\s*,\s*(-?\d+)$")
_FENCE_RE = re.compile(r"^(m|lw)fence$")
_XCHG_RE = re.compile(r"^xchg\s+(\w+)\s*,\s*(-?\d+)\s*->\s*(\w+)$")
_CAS_RE = re.compile(
    r"^cas\s+(\w+)\s*,\s*(-?\d+)\s*,\s*(-?\d+)\s*->\s*(\w+)$")


@dataclass(frozen=True)
class ParsedLitmus:
    """A parsed litmus file: the program plus its witness, if any."""

    program: Program
    witness: Optional[Dict[str, int]]


def _parse_instruction(line: str, line_no: int) -> Instruction:
    match = _LD_RE.match(line)
    if match:
        return Ld(match.group(2), match.group(3),
                  acquire=bool(match.group(1)))
    match = _ST_RE.match(line)
    if match:
        return St(match.group(2), int(match.group(3)),
                  release=bool(match.group(1)))
    match = _FENCE_RE.match(line)
    if match:
        return Fence("mf" if match.group(1) == "m" else "lw")
    match = _XCHG_RE.match(line)
    if match:
        return Rmw(match.group(1), int(match.group(2)), match.group(3))
    match = _CAS_RE.match(line)
    if match:
        return Cas(match.group(1), int(match.group(2)),
                   int(match.group(3)), match.group(4))
    raise LitmusParseError(f"line {line_no}: cannot parse {line!r}")


def _parse_conditions(text: str, line_no: int) -> Dict[str, int]:
    conditions: Dict[str, int] = {}
    for token in text.split():
        if "=" not in token:
            raise LitmusParseError(
                f"line {line_no}: condition {token!r} is not key=value")
        key, value = token.split("=", 1)
        try:
            conditions[key] = int(value)
        except ValueError:
            raise LitmusParseError(
                f"line {line_no}: {value!r} is not an integer") from None
    return conditions


def parse_litmus(source: str) -> ParsedLitmus:
    """Parse litmus source text into a program + optional witness."""
    name = "unnamed"
    initial: Dict[str, int] = {}
    threads: Dict[int, List[Instruction]] = {}
    witness: Optional[Dict[str, int]] = None
    current: Optional[int] = None

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _NAME_RE.match(line)
        if match:
            name = match.group(1)
            continue
        match = _INIT_RE.match(line)
        if match:
            initial.update(_parse_conditions(match.group(1), line_no))
            continue
        match = _THREAD_RE.match(line)
        if match:
            current = int(match.group(1))
            if current in threads:
                raise LitmusParseError(
                    f"line {line_no}: thread T{current} defined twice")
            threads[current] = []
            continue
        match = _EXISTS_RE.match(line)
        if match:
            witness = _parse_conditions(match.group(1), line_no)
            continue
        if current is None:
            raise LitmusParseError(
                f"line {line_no}: instruction outside a thread block")
        threads[current].append(_parse_instruction(line, line_no))

    if not threads:
        raise LitmusParseError("no threads defined")
    expected = list(range(len(threads)))
    if sorted(threads) != expected:
        raise LitmusParseError(
            f"thread ids must be contiguous from T0; got "
            f"{sorted('T%d' % t for t in threads)}")
    program = make_program(
        name, [threads[tid] for tid in expected], initial)
    return ParsedLitmus(program=program, witness=witness)


def parse_litmus_file(path: str) -> ParsedLitmus:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_litmus(handle.read())


def render_litmus(program: Program,
                  witness: Optional[Dict[str, int]] = None) -> str:
    """The inverse of :func:`parse_litmus` (round-trippable)."""
    lines = [f"name: {program.name}"]
    if program.initial:
        lines.append("init: " + " ".join(
            f"{addr}={value}" for addr, value in program.initial))
    for tid, thread in enumerate(program.threads):
        lines.append("")
        lines.append(f"T{tid}:")
        for op in thread:
            lines.append(f"  {op}")
    if witness:
        lines.append("")
        lines.append("exists: " + " ".join(
            f"{key}={value}" for key, value in sorted(witness.items())))
    return "\n".join(lines) + "\n"
