"""Quiescence: when is a live system snapshottable?

A snapshot cannot serialize closures — and the simulator is full of
them (load-completion callbacks in the engine queue, coherence
transaction continuations, store-drain waiters).  Instead of trying, we
only capture at a **quiescent point**: every pipeline, store buffer,
and coherence transaction has drained, so the only events left in the
engine queue are *classifiable periodic ticks* — a core's per-cycle
tick or a fault plan's eviction/squash metronome — each of which can be
described as plain data ``(time, seq, descriptor)`` and rebuilt against
a fresh system on restore.

Two quiescent points occur naturally:

* cycle 0, after construction and cache warm-up but before ``run()`` —
  the warm-fork point used by the five-policy sweep;
* after a drain: :meth:`repro.sim.system.System.run` with
  ``checkpoint_every`` pauses dispatch and lets the pipelines empty.

:func:`check_quiescent` verifies every structural condition and
classifies the queue residue, raising :class:`NotQuiescent` with the
full reason list otherwise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System

#: A serializable stand-in for one pending engine event.
#: ``descriptor`` is ("core_tick", core_id) | ("fault_evict",) |
#: ("fault_squash",).
EventResidue = Tuple[int, int, Tuple]


class NotQuiescent(RuntimeError):
    """The system holds in-flight state a snapshot cannot represent."""

    def __init__(self, reasons: List[str]) -> None:
        self.reasons = reasons
        preview = "; ".join(reasons[:4])
        more = f" (+{len(reasons) - 4} more)" if len(reasons) > 4 else ""
        super().__init__(f"system is not quiescent: {preview}{more}")


def _live_ready(core) -> bool:
    """True if the ready heap holds any entry a future ``_issue`` would
    act on.  A squash leaves *dead* residue behind — ``(seq, epoch,
    entry)`` tuples whose epoch no longer matches — which ``_issue``
    pops and discards without consuming an issue slot; those are
    harmless garbage, not in-flight state."""
    return any(entry.issue_epoch == epoch and not entry.issued
               for _seq, epoch, entry in core.ready)


def _live_waiters(mapping) -> bool:
    """True if a ``{producer_seq: [(entry, epoch), ...]}`` wake map
    (``consumers`` / ``deferred_on_store`` / ``deferred_on_fence``)
    holds any entry its pop path would act on (same epoch filter as
    :func:`_live_ready` — stale pairs are skipped on pop)."""
    return any(entry.issue_epoch == epoch and not entry.issued
               for waiters in mapping.values()
               for entry, epoch in waiters)


def _core_reasons(core) -> List[str]:
    cid = core.core_id
    reasons = []
    if not core.rob.empty:
        reasons.append(f"core {cid}: ROB not empty")
    if len(core.lq):
        reasons.append(f"core {cid}: LQ not empty")
    if not core.sb.empty:
        reasons.append(f"core {cid}: SQ/SB not empty")
    if core.load_of or core.store_of:
        reasons.append(f"core {cid}: live load/store map entries")
    if _live_ready(core) or _live_waiters(core.consumers):
        reasons.append(f"core {cid}: unissued ready/dependent ops")
    if _live_waiters(core.deferred_on_store) or \
            _live_waiters(core.deferred_on_fence):
        reasons.append(f"core {cid}: loads deferred on store/fence")
    if core.pending_fences:
        reasons.append(f"core {cid}: in-flight fences")
    if core.barrier_seq is not None:
        reasons.append(f"core {cid}: dispatch barrier active")
    if core._sb_inflight or core._sb_miss_inflight:
        reasons.append(f"core {cid}: SB drain in flight")
    if core._rfo_pending:
        reasons.append(f"core {cid}: ownership prefetches pending")
    if core.detector is not None:
        reasons.append(f"core {cid}: violation detector attached")
    if core.tracer is not None:
        reasons.append(f"core {cid}: pipeline tracer attached")
    policy = core.policy
    gate = getattr(policy, "gate", None)
    if gate is not None and gate.closed:
        reasons.append(f"core {cid}: retire gate closed")
    return reasons


def _memory_reasons(memory) -> List[str]:
    reasons = []
    for ctrl in memory.controllers:
        if ctrl.txns or ctrl.txn_queue:
            reasons.append(
                f"controller {ctrl.core_id}: coherence txns in flight")
        if ctrl.wb_buffer:
            reasons.append(
                f"controller {ctrl.core_id}: writebacks in flight")
    for bank in memory.banks:
        if bank.busy or bank.waiting:
            reasons.append(f"directory bank {bank.index}: busy lines")
    return reasons


def classify_events(system: "System") -> List[EventResidue]:
    """Map every pending engine event to a serializable descriptor.

    Raises :class:`NotQuiescent` on any event that is not a recognized
    periodic tick.
    """
    residue: List[EventResidue] = []
    reasons: List[str] = []
    cores_by_id = {id(core): core for core in system.cores}
    faults = system.faults
    for time, seq, fn, args in system.engine.pending_events():
        descriptor = None
        if not args:
            self_obj = getattr(fn, "__self__", None)
            core = cores_by_id.get(id(self_obj))
            if core is not None and fn == core._tick:
                descriptor = ("core_tick", core.core_id)
            elif faults is not None and self_obj is faults:
                if fn == faults._evict_tick:
                    descriptor = ("fault_evict",)
                elif fn == faults._squash_tick:
                    descriptor = ("fault_squash",)
        if descriptor is None:
            reasons.append(
                f"unclassifiable event at cycle {time}: {fn!r}")
        else:
            residue.append((time, seq, descriptor))
    if reasons:
        raise NotQuiescent(reasons)
    return residue


def check_quiescent(system: "System") -> List[EventResidue]:
    """Raise :class:`NotQuiescent` unless the system is snapshottable;
    returns the classified engine-queue residue."""
    reasons: List[str] = []
    if system.engine.event_hook is not None:
        reasons.append("engine event_hook attached (per-event watchdog)")
    if system.engine.stopped and not system.done:
        reasons.append("engine stopped before completion")
    for core in system.cores:
        reasons.extend(_core_reasons(core))
    reasons.extend(_memory_reasons(system.memory))
    if reasons:
        raise NotQuiescent(reasons)
    return classify_events(system)


def structurally_quiescent(system: "System") -> bool:
    """Cheap predicate for the drain loop: pipelines and coherence
    drained (queue residue not yet classified).  Meant to be called
    per-event while draining, so it fails as fast as possible."""
    for core in system.cores:
        if core.finished:
            continue
        if (not core.rob.empty or not core.sb.empty or len(core.lq)
                or core._sb_inflight or core._rfo_pending):
            return False
    for ctrl in system.memory.controllers:
        if ctrl.txns or ctrl.txn_queue or ctrl.wb_buffer:
            return False
    for bank in system.memory.banks:
        if bank.busy or bank.waiting:
            return False
    return True


def is_quiescent(system: "System") -> bool:
    """Full quiescence test (structural conditions + classifiable queue
    residue) as a bool."""
    if not structurally_quiescent(system):
        return False
    try:
        check_quiescent(system)
    except NotQuiescent:
        return False
    return True
