"""The snapshot coverage schema: which attributes of each simulator
class a snapshot must account for.

Every class that participates in :func:`repro.snapshot.capture` has an
entry here partitioning its ``__slots__`` into three buckets:

``covered``
    Serialized into the snapshot and reinstalled on restore.

``empty``
    Must be at its empty/default value at a quiescent point; the
    quiescence checker enforces this, so the snapshot never needs to
    serialize it (and *could not* — these hold closures, in-flight
    transactions, or live pipeline entries).

``transient``
    Rebuilt by the constructor on restore: configuration, engine /
    controller / policy bindings, probe resolutions, derived geometry.

The partition is the snapshot format's source of truth *and* a lint
contract: the ``snap-coverage`` discipline rule
(:mod:`repro.lint.discipline`) flags any ``__slots__`` attribute added
to one of these classes that no bucket mentions, so new mutable state
cannot silently escape the snapshot.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

#: Bump when the serialized layout changes incompatibly.
SNAPSHOT_VERSION = 1


def _entry(covered=(), empty=(), transient=()) -> Dict[str, FrozenSet[str]]:
    return {"covered": frozenset(covered), "empty": frozenset(empty),
            "transient": frozenset(transient)}


#: class name -> {"covered" | "empty" | "transient": frozenset of slots}.
SNAPSHOT_SCHEMA: Dict[str, Dict[str, FrozenSet[str]]] = {
    "Engine": _entry(
        covered=("now", "_seq", "events_dispatched", "_queue",
                 "_bucket_now", "_bucket_next"),
        empty=("_stopped", "event_hook"),
    ),
    "System": _entry(
        covered=("memory_data", "_unfinished", "engine", "memory", "cores",
                 "faults"),
        transient=("config", "policy_name", "_use_stop", "probe_bus"),
    ),
    "Core": _entry(
        covered=("stats", "sb", "storeset", "prefetcher",
                 "branch_predictor", "memory_data", "retired_load_values",
                 "fetch_idx", "done", "finished", "_sleeping",
                 "_sleep_since", "_sleep_stall", "_tick_scheduled"),
        empty=("rob", "lq", "load_of", "store_of", "consumers", "ready",
               "deferred_on_store", "pending_fences", "deferred_on_fence",
               "barrier_seq", "_sb_inflight", "_sb_miss_inflight",
               "_rfo_pending", "detector", "tracer", "dispatch_paused"),
        transient=("engine", "core_id", "config", "trace", "_trace_ops",
                   "_trace_len", "_issue_width", "_retire_width",
                   "controller", "policy", "on_finish", "probe_bus",
                   "_p_slf_forward", "_p_sb_write", "_p_gate_stall",
                   "_p_squash", "_p_load_perform"),
    ),
    "StoreBuffer": _entry(
        covered=("_bits", "_head", "_tail"),
        empty=("_slots", "_count", "_by_addr"),
        transient=("capacity",),
    ),
    "StoreSetPredictor": _entry(
        covered=("_ssit", "_lfst", "_next_ssid", "_accesses",
                 "violations_trained"),
        transient=("ssit_size", "lfst_size", "clear_interval"),
    ),
    "TagePredictor": _entry(
        covered=("base", "tables", "history", "_updates", "predictions",
                 "mispredictions"),
        transient=("base_size", "tagged_size", "tag_mask",
                   "useful_reset_interval", "_folds"),
    ),
    "_TaggedEntry": _entry(covered=("tag", "counter", "useful")),
    "StridePrefetcher": _entry(
        covered=("_table", "prefetches_issued"),
        transient=("_issue", "line_bytes", "degree", "table_size"),
    ),
    "_StrideState": _entry(covered=("last_addr", "stride", "confidence")),
    "RetireGate": _entry(
        covered=("_closed_at", "closes", "opens", "lock_cycles",
                 "lock_cycles_by_key"),
        empty=("_closed", "_key"),
    ),
    "_SoSBase": _entry(
        covered=("gate", "active_forwardings"),
        transient=("_p_gate_close", "_p_gate_open", "_engine"),
    ),
    "CacheArray": _entry(
        covered=("_sets", "hits", "misses", "evictions"),
        transient=("config", "line_bytes", "num_sets", "ways", "_pow2",
                   "_line_mask", "_line_shift", "_set_mask"),
    ),
    "PrivateHierarchy": _entry(
        covered=("l1", "l2"),
        transient=("line_bytes", "l1_evict_listener"),
    ),
    "PrivateController": _entry(
        covered=("state", "hierarchy", "_fault_store_horizon"),
        empty=("txns", "txn_queue", "wb_buffer"),
        transient=("system", "core_id", "removal_listener", "mshrs",
                   "fault_store_delay", "_p_inval", "_p_evict",
                   "_p_fill", "_p_prefetch",
                   "line_bytes", "_line_pow2", "_line_mask"),
    ),
    "DirectoryBank": _entry(
        covered=("l3", "owner", "sharers", "stale_putm"),
        empty=("busy", "waiting"),
        transient=("system", "index"),
    ),
    "CoherentMemorySystem": _entry(
        covered=("stats_invalidations", "stats_evictions", "banks",
                 "controllers"),
        transient=("engine", "system_config", "config", "network",
                   "core_mshrs", "probe_bus", "line_bytes"),
    ),
    "Network": _entry(
        covered=("stats",),
        transient=("engine", "config", "fault_delay", "_p_msg"),
    ),
    "TrafficStats": _entry(covered=("messages",)),
}

#: Which module each schema class must be defined in — the lint rule
#: only applies an entry to its home module, so an unrelated class that
#: happens to share a name is never misflagged.
SCHEMA_MODULES: Dict[str, str] = {
    "Engine": "repro/sim/engine.py",
    "System": "repro/sim/system.py",
    "Core": "repro/cpu/pipeline.py",
    "StoreBuffer": "repro/cpu/store_buffer.py",
    "StoreSetPredictor": "repro/cpu/storeset.py",
    "TagePredictor": "repro/cpu/branch.py",
    "_TaggedEntry": "repro/cpu/branch.py",
    "StridePrefetcher": "repro/memory/prefetch.py",
    "_StrideState": "repro/memory/prefetch.py",
    "RetireGate": "repro/core/gate.py",
    "_SoSBase": "repro/core/policies.py",
    "CacheArray": "repro/coherence/cache.py",
    "PrivateHierarchy": "repro/coherence/cache.py",
    "PrivateController": "repro/coherence/mesi.py",
    "DirectoryBank": "repro/coherence/mesi.py",
    "CoherentMemorySystem": "repro/coherence/mesi.py",
    "Network": "repro/noc/network.py",
    "TrafficStats": "repro/noc/network.py",
}


def schema_buckets(class_name: str) -> FrozenSet[str]:
    """Union of all bucket members for ``class_name`` (empty if the
    class is not snapshot-covered)."""
    entry = SNAPSHOT_SCHEMA.get(class_name)
    if entry is None:
        return frozenset()
    return entry["covered"] | entry["empty"] | entry["transient"]
