"""Serializable, versioned snapshots of full simulator state.

Public surface::

    from repro.snapshot import capture, restore, fork, Snapshot

    snap = capture(system)          # quiescent System -> Snapshot
    blob = snap.to_bytes()          # versioned, compressed, durable
    system2 = restore(Snapshot.from_bytes(blob), traces)
    system3 = fork(snap, traces, "370-SLFSoS-key")   # warm-fork

See :mod:`repro.snapshot.state` for the operations,
:mod:`repro.snapshot.quiescence` for when a system is snapshottable,
and :mod:`repro.snapshot.schema` for the per-class coverage contract
(enforced by the ``snap-coverage`` lint rule).
"""

from repro.snapshot.quiescence import (NotQuiescent, check_quiescent,
                                       is_quiescent,
                                       structurally_quiescent)
from repro.snapshot.schema import (SNAPSHOT_SCHEMA, SNAPSHOT_VERSION,
                                   schema_buckets)
from repro.snapshot.state import (Snapshot, SnapshotError, capture, fork,
                                  restore)

__all__ = [
    "NotQuiescent", "SNAPSHOT_SCHEMA", "SNAPSHOT_VERSION", "Snapshot",
    "SnapshotError", "capture", "check_quiescent", "fork", "is_quiescent",
    "restore", "schema_buckets", "structurally_quiescent",
]
