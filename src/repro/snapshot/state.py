"""Capture, restore, and fork full simulator state.

A :class:`Snapshot` is a pure-data (JSON-safe) image of a quiescent
:class:`~repro.sim.system.System`: engine clock + seq counter + the
classified queue residue, every core's architectural and predictor
state, the cache arrays and directory, the functional memory image, and
the fault plan's RNG streams.  Because it contains no closures and no
object graphs, it serializes with :meth:`Snapshot.to_bytes` (versioned,
compressed JSON) and survives process boundaries — the crash-resume
path of :mod:`repro.sweep.runner` ships these blobs through the sweep
cache.

Three operations:

:func:`capture`
    System -> Snapshot.  Raises
    :class:`~repro.snapshot.quiescence.NotQuiescent` unless every
    pipeline and coherence transaction has drained.

:func:`restore`
    Snapshot + the same traces -> a fresh System continuing exactly
    where the captured one stopped.  Byte-identical: running the
    restored system yields the same :class:`SystemStats` the captured
    run would have produced.

:func:`fork`
    A *pristine* (cycle-0) snapshot + a policy name -> a System running
    that policy over the captured warmed caches.  This is the warm-fork
    used by the five-policy sweep: warm once, fork five times — the
    policies only diverge after warm-up, so each fork's stats are
    byte-identical to a from-scratch warmed run.
"""

from __future__ import annotations

import json
import zlib
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.snapshot.quiescence import check_quiescent
from repro.snapshot.schema import SNAPSHOT_VERSION

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.isa import Trace
    from repro.sim.system import System

#: Magic prefix of the binary form (versioned separately from the JSON
#: payload's own ``version`` field so a foreign blob fails fast).
_MAGIC = b"RSNAP1\x00"


class SnapshotError(RuntimeError):
    """A snapshot cannot be taken, decoded, or reinstalled."""


# ----------------------------------------------------------------------
# Per-structure capture/install helpers (pure data in, pure data out)
# ----------------------------------------------------------------------

def _cache_state(arr) -> Dict:
    # Sets are stored sparsely (index, resident lines) — most arrays in
    # a warmed system still have many empty sets, and fork() restores a
    # snapshot into dozens of arrays per system, so skipping empties is
    # a measurable win on both capture and install.
    return {
        "num_sets": arr.num_sets,
        "sets": [[i, list(lines)] for i, lines in enumerate(arr._sets)
                 if lines],
        "hits": arr.hits, "misses": arr.misses, "evictions": arr.evictions,
    }


def _install_cache(arr, data: Dict) -> None:
    from collections import OrderedDict
    num_sets = data["num_sets"]
    if num_sets != arr.num_sets:
        raise SnapshotError(
            f"cache geometry mismatch: snapshot has {num_sets} sets, "
            f"target has {arr.num_sets}")
    # Install helpers only ever run on freshly constructed systems
    # (inside restore()/fork()), so every set starts empty and only the
    # sparse non-empty entries need to be rebuilt.
    sets = arr._sets
    for i, lines in data["sets"]:
        sets[i] = OrderedDict((line, None) for line in lines)
    arr.hits = data["hits"]
    arr.misses = data["misses"]
    arr.evictions = data["evictions"]


def _tage_state(bp) -> Dict:
    tables = []
    for table in bp.tables:
        entries = []
        for idx, entry in enumerate(table):
            if entry.tag or entry.counter or entry.useful:
                entries.append([idx, entry.tag, entry.counter,
                                entry.useful])
        tables.append(entries)
    return {
        "base": [[idx, val] for idx, val in enumerate(bp.base)
                 if val != 1],
        "tables": tables,
        "history": bp.history,
        "updates": bp._updates,
        "predictions": bp.predictions,
        "mispredictions": bp.mispredictions,
    }


def _install_tage(bp, data: Dict) -> None:
    for idx, val in data["base"]:
        bp.base[idx] = val
    for table, entries in zip(bp.tables, data["tables"]):
        for idx, tag, counter, useful in entries:
            entry = table[idx]
            entry.tag = tag
            entry.counter = counter
            entry.useful = useful
    bp.history = data["history"]
    bp._folds = bp._refold()
    bp._updates = data["updates"]
    bp.predictions = data["predictions"]
    bp.mispredictions = data["mispredictions"]


def _prefetcher_state(pf) -> Dict:
    return {
        "table": [[pc, st.last_addr, st.stride, st.confidence]
                  for pc, st in pf._table.items()],
        "issued": pf.prefetches_issued,
    }


def _install_prefetcher(pf, data: Dict) -> None:
    from collections import OrderedDict
    from repro.memory.prefetch import _StrideState
    table = OrderedDict()
    for pc, last_addr, stride, confidence in data["table"]:
        st = _StrideState(last_addr)
        st.stride = stride
        st.confidence = confidence
        table[pc] = st
    pf._table = table
    pf.prefetches_issued = data["issued"]


def _rng_state(rng) -> List:
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def _install_rng(rng, data: List) -> None:
    rng.setstate((data[0], tuple(data[1]), data[2]))


def _core_state(core) -> Dict:
    gate = getattr(core.policy, "gate", None)
    forwardings = getattr(core.policy, "active_forwardings", None)
    return {
        "fetch_idx": core.fetch_idx,
        "finished": core.finished,
        "done": bytes(core.done).hex(),
        "stats": core.stats.to_dict(),
        "retired_load_values": sorted(core.retired_load_values.items()),
        "sleeping": core._sleeping,
        "sleep_since": core._sleep_since,
        "sleep_stall": core._sleep_stall,
        "tick_scheduled": core._tick_scheduled,
        "sb": {"bits": list(core.sb._bits), "head": core.sb._head,
               "tail": core.sb._tail},
        "storeset": {
            "ssit": sorted(core.storeset._ssit.items()),
            "lfst": sorted(core.storeset._lfst.items()),
            "next_ssid": core.storeset._next_ssid,
            "accesses": core.storeset._accesses,
            "violations_trained": core.storeset.violations_trained,
        },
        "tage": None if core.branch_predictor is None
                else _tage_state(core.branch_predictor),
        "prefetcher": None if core.prefetcher is None
                      else _prefetcher_state(core.prefetcher),
        "gate": None if gate is None else {
            "closed_at": gate._closed_at,
            "closes": gate.closes,
            "opens": gate.opens,
            "lock_cycles": gate.lock_cycles,
            "lock_by_key": sorted(gate.lock_cycles_by_key.items()),
        },
        "active_forwardings": None if forwardings is None
                              else sorted(forwardings.items()),
    }


def _install_core(core, data: Dict) -> None:
    from repro.sim.stats import CoreStats

    core.fetch_idx = data["fetch_idx"]
    core.finished = data["finished"]
    core.done = bytearray(bytes.fromhex(data["done"]))
    core.stats = CoreStats.from_dict(data["stats"])
    core.retired_load_values = {seq: value for seq, value
                                in data["retired_load_values"]}
    core._sleeping = data["sleeping"]
    core._sleep_since = data["sleep_since"]
    core._sleep_stall = data["sleep_stall"]
    core._tick_scheduled = data["tick_scheduled"]

    sb = data["sb"]
    core.sb._bits = list(sb["bits"])
    core.sb._head = sb["head"]
    core.sb._tail = sb["tail"]

    ss = data["storeset"]
    core.storeset._ssit = {pc: ssid for pc, ssid in ss["ssit"]}
    core.storeset._lfst = {ssid: seq for ssid, seq in ss["lfst"]}
    core.storeset._next_ssid = ss["next_ssid"]
    core.storeset._accesses = ss["accesses"]
    core.storeset.violations_trained = ss["violations_trained"]

    if data["tage"] is not None:
        if core.branch_predictor is None:
            raise SnapshotError(
                f"core {core.core_id}: snapshot has branch-predictor "
                f"state but the target core has none")
        _install_tage(core.branch_predictor, data["tage"])
    if data["prefetcher"] is not None:
        if core.prefetcher is None:
            raise SnapshotError(
                f"core {core.core_id}: snapshot has prefetcher state "
                f"but the target core has none")
        _install_prefetcher(core.prefetcher, data["prefetcher"])

    gate = getattr(core.policy, "gate", None)
    if data["gate"] is not None and gate is not None:
        g = data["gate"]
        gate._closed_at = g["closed_at"]
        gate.closes = g["closes"]
        gate.opens = g["opens"]
        gate.lock_cycles = g["lock_cycles"]
        gate.lock_cycles_by_key = {key: cyc for key, cyc
                                   in g["lock_by_key"]}
    forwardings = getattr(core.policy, "active_forwardings", None)
    if data["active_forwardings"] is not None and forwardings is not None:
        forwardings.clear()
        forwardings.update({key: seq for key, seq
                            in data["active_forwardings"]})


def _controller_state(ctrl) -> Dict:
    return {
        # Insertion order, NOT sorted: fault eviction picks its victim
        # by index into ``list(ctrl.state)``, so a restored run must see
        # the exact same ordering or the eviction stream diverges.
        "state": list(ctrl.state.items()),
        "fault_store_horizon": ctrl._fault_store_horizon,
        "l1": _cache_state(ctrl.hierarchy.l1),
        "l2": _cache_state(ctrl.hierarchy.l2),
    }


def _install_controller(ctrl, data: Dict) -> None:
    ctrl.state = {line: st for line, st in data["state"]}
    ctrl._fault_store_horizon = data["fault_store_horizon"]
    _install_cache(ctrl.hierarchy.l1, data["l1"])
    _install_cache(ctrl.hierarchy.l2, data["l2"])


def _bank_state(bank) -> Dict:
    return {
        "owner": sorted(bank.owner.items()),
        "sharers": [[line, sorted(cores)]
                    for line, cores in sorted(bank.sharers.items())],
        "stale_putm": [[list(key) if isinstance(key, tuple) else key,
                        value]
                       for key, value in sorted(bank.stale_putm.items())],
        "l3": _cache_state(bank.l3),
    }


def _install_bank(bank, data: Dict) -> None:
    bank.owner = {line: core for line, core in data["owner"]}
    bank.sharers = {line: set(cores) for line, cores in data["sharers"]}
    bank.stale_putm = {tuple(key) if isinstance(key, list) else key: value
                      for key, value in data["stale_putm"]}
    _install_cache(bank.l3, data["l3"])


def _faults_state(plan) -> Optional[Dict]:
    if plan is None:
        return None
    return {
        "spec": plan.spec.to_dict(),
        "seed": plan.seed,
        "injected": dict(plan.injected),
        "rng": {
            "noc": _rng_state(plan._rng_noc),
            "evict": _rng_state(plan._rng_evict),
            "squash": _rng_state(plan._rng_squash),
            "sb": _rng_state(plan._rng_sb),
        },
    }


def _build_faults(data: Optional[Dict]):
    if data is None:
        return None
    from repro.resilience.faults import FaultPlan, FaultSpec
    plan = FaultPlan(FaultSpec(**data["spec"]), data["seed"])
    plan.injected = dict(data["injected"])
    _install_rng(plan._rng_noc, data["rng"]["noc"])
    _install_rng(plan._rng_evict, data["rng"]["evict"])
    _install_rng(plan._rng_squash, data["rng"]["squash"])
    _install_rng(plan._rng_sb, data["rng"]["sb"])
    return plan


# ----------------------------------------------------------------------
# The snapshot object
# ----------------------------------------------------------------------

class Snapshot:
    """A pure-data image of a quiescent system (see module docstring)."""

    __slots__ = ("data",)

    def __init__(self, data: Dict) -> None:
        self.data = data

    @property
    def version(self) -> int:
        return self.data["version"]

    @property
    def policy(self) -> str:
        return self.data["policy"]

    @property
    def cycle(self) -> int:
        return self.data["engine"]["now"]

    @property
    def pristine(self) -> bool:
        """True for a cycle-0 (pre-run) snapshot — the only kind
        :func:`fork` may re-target at a different policy."""
        eng = self.data["engine"]
        return (eng["now"] == 0 and eng["seq"] == 0
                and not eng["events"] and eng["dispatched"] == 0)

    def to_dict(self) -> Dict:
        return self.data

    @classmethod
    def from_dict(cls, data: Dict) -> "Snapshot":
        version = data.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot version {version!r} "
                f"(this build reads version {SNAPSHOT_VERSION})")
        return cls(data)

    def to_bytes(self) -> bytes:
        payload = json.dumps(self.data, sort_keys=True,
                             separators=(",", ":")).encode()
        return _MAGIC + zlib.compress(payload, 6)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Snapshot":
        if not blob.startswith(_MAGIC):
            raise SnapshotError("not a snapshot blob (bad magic)")
        try:
            payload = zlib.decompress(blob[len(_MAGIC):])
            data = json.loads(payload)
        except (zlib.error, ValueError) as exc:
            raise SnapshotError(f"corrupt snapshot blob: {exc}")
        return cls.from_dict(data)

    def copy(self) -> "Snapshot":
        """An independent deep copy (forks never alias mutable state)."""
        return Snapshot(json.loads(json.dumps(self.data)))


# ----------------------------------------------------------------------
# capture / restore / fork
# ----------------------------------------------------------------------

def capture(system: "System") -> Snapshot:
    """Snapshot a quiescent system.  Raises
    :class:`~repro.snapshot.quiescence.NotQuiescent` if any pipeline,
    store buffer, or coherence transaction is still in flight, and
    :class:`SnapshotError` for attached observers a snapshot cannot
    carry (probes, tracers, violation detectors)."""
    if system.probe_bus is not None:
        raise SnapshotError("cannot snapshot a system with probes "
                            "attached (observer state is not captured)")
    residue = check_quiescent(system)
    engine = system.engine
    data = {
        "version": SNAPSHOT_VERSION,
        "policy": system.policy_name,
        "config": repr(system.config),
        "trace_lens": [len(core.trace) for core in system.cores],
        "engine": {
            "now": engine.now,
            "seq": engine._seq,
            "dispatched": engine.events_dispatched,
            "events": [[time, seq, list(descriptor)]
                       for time, seq, descriptor in residue],
        },
        "unfinished": system._unfinished,
        "memory_data": sorted(system.memory_data.items()),
        "mem_stats": {
            "invalidations": system.memory.stats_invalidations,
            "evictions": system.memory.stats_evictions,
        },
        "network_messages": dict(system.memory.network.stats.messages),
        "cores": [_core_state(core) for core in system.cores],
        "controllers": [_controller_state(ctrl)
                        for ctrl in system.memory.controllers],
        "banks": [_bank_state(bank) for bank in system.memory.banks],
        "faults": _faults_state(system.faults),
    }
    return Snapshot(data)


def _rebuild_events(system: "System", events: List) -> List:
    rebuilt = []
    for time, seq, descriptor in events:
        kind = descriptor[0]
        if kind == "core_tick":
            fn = system.cores[descriptor[1]]._tick
        elif kind == "fault_evict":
            fn = system.faults._evict_tick
        elif kind == "fault_squash":
            fn = system.faults._squash_tick
        else:
            raise SnapshotError(f"unknown event descriptor {descriptor!r}")
        rebuilt.append((time, seq, fn, ()))
    return rebuilt


def restore(snapshot: Snapshot, traces: Sequence["Trace"],
            config=None, policy: Optional[str] = None) -> "System":
    """Rebuild a runnable system from ``snapshot``.

    ``traces`` must be the exact traces of the captured run (they are
    regenerated deterministically rather than serialized); ``config``
    likewise (None uses the default, as System does).  ``policy``
    overrides the captured policy — legal only for a pristine snapshot
    (see :func:`fork`).  Call ``run()`` on the result to continue; for
    a mid-run snapshot, pass the same ``checkpoint_every`` the captured
    run used so the drain points line up.
    """
    from repro.sim.system import System

    data = snapshot.data
    if policy is not None and policy != data["policy"] \
            and not snapshot.pristine:
        raise SnapshotError(
            "cannot re-target a mid-run snapshot at a different policy "
            "(policies diverge after cycle 0); fork from a pristine "
            "warm-up snapshot instead")
    if [len(t) for t in traces] != data["trace_lens"]:
        raise SnapshotError(
            f"trace shape mismatch: snapshot was captured over traces "
            f"of lengths {data['trace_lens']}, got "
            f"{[len(t) for t in traces]}")

    system = System(traces, policy or data["policy"], config=config,
                    detect_violations=False, warm_caches=False)
    if repr(system.config) != data["config"]:
        raise SnapshotError(
            "system configuration mismatch: the restored system must be "
            "built with the captured run's config")

    system.memory_data.clear()
    system.memory_data.update({addr: val for addr, val
                               in data["memory_data"]})
    for core, core_data in zip(system.cores, data["cores"]):
        _install_core(core, core_data)
    for ctrl, ctrl_data in zip(system.memory.controllers,
                               data["controllers"]):
        _install_controller(ctrl, ctrl_data)
    for bank, bank_data in zip(system.memory.banks, data["banks"]):
        _install_bank(bank, bank_data)
    system.memory.stats_invalidations = data["mem_stats"]["invalidations"]
    system.memory.stats_evictions = data["mem_stats"]["evictions"]
    system.memory.network.stats.messages = dict(data["network_messages"])

    plan = _build_faults(data["faults"])
    if plan is not None:
        plan.install_restored(system)
    system._unfinished = sum(1 for core in system.cores
                             if not core.finished)
    if system._unfinished != data["unfinished"]:
        raise SnapshotError(
            f"unfinished-core count mismatch after restore: "
            f"{system._unfinished} != {data['unfinished']}")

    eng = data["engine"]
    system.engine.restore_queue(eng["now"], eng["seq"],
                                _rebuild_events(system, eng["events"]))
    system.engine.events_dispatched = eng["dispatched"]
    if not snapshot.pristine:
        # Mid-run snapshot: wake the drained cores exactly the way the
        # captured run's checkpoint resume did, so the seq streams (and
        # hence all future event ordering) line up byte-for-byte.
        system._resume_after_checkpoint()
    return system


def fork(snapshot: Snapshot, traces: Sequence["Trace"], policy: str,
         config=None) -> "System":
    """Fork a pristine (cycle-0, post-warm-up) snapshot into a system
    running ``policy``.  The warm-fork of the five-policy sweep: the
    expensive trace generation + functional warm-up happen once, each
    policy cell restores the warmed image and runs."""
    if not snapshot.pristine:
        raise SnapshotError(
            f"fork requires a pristine cycle-0 snapshot; this one was "
            f"captured at cycle {snapshot.cycle}")
    return restore(snapshot, traces, config=config, policy=policy)
