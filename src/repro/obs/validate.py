"""Schema validation for emitted Chrome trace-event JSON.

The Trace Event Format is loose, so this checks the subset the exporter
promises — enough for CI to catch a malformed trace before a human
loads it into Perfetto:

* top level: ``traceEvents`` list + ``otherData`` metadata dict;
* every event has ``ph``/``pid``/``tid``/``name``; phase is one the
  exporter emits ("X", "M", "C", "i");
* "X" slices have integer ``ts`` >= 0 and ``dur`` >= 1;
* counter events carry numeric values only;
* gate-closed slice count (cat == "gate") equals
  ``otherData.gate_closes`` when present — the acceptance criterion
  that the trace agrees with ``CoreStats.gate_closes`` exactly;
* leak slice count (cat == "leak" complete events) equals
  ``otherData.leaks`` when present — same contract for the leakage
  track against the :class:`~repro.leakage.watcher.LeakReport`.

Also a CLI (used by the CI smoke step)::

    python -m repro.obs.validate trace.json
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

_PHASES = {"X", "M", "C", "i"}


class TraceValidationError(Exception):
    """The trace JSON does not satisfy the exporter's schema."""


def _fail(msg: str) -> None:
    raise TraceValidationError(msg)


def validate_chrome_trace(trace: Dict) -> Dict[str, int]:
    """Validate a loaded trace dict; returns summary counts by phase.

    Raises :class:`TraceValidationError` on the first violation.
    """
    if not isinstance(trace, dict):
        _fail(f"top level must be an object, got {type(trace).__name__}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        _fail("missing or non-list 'traceEvents'")
    other = trace.get("otherData", {})
    if not isinstance(other, dict):
        _fail("'otherData' must be an object")

    counts: Dict[str, int] = {ph: 0 for ph in _PHASES}
    gate_slices = 0
    leak_slices = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            _fail(f"{where}: event must be an object")
        ph = event.get("ph")
        if ph not in _PHASES:
            _fail(f"{where}: bad phase {ph!r} (expected one of "
                  f"{sorted(_PHASES)})")
        counts[ph] += 1
        for key in ("name", "pid", "tid"):
            if key not in event:
                _fail(f"{where}: missing {key!r}")
        if not isinstance(event["pid"], int) \
                or not isinstance(event["tid"], int):
            _fail(f"{where}: pid/tid must be integers")
        if ph in ("X", "C", "i"):
            ts = event.get("ts")
            if not isinstance(ts, int) or ts < 0:
                _fail(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 1:
                _fail(f"{where}: bad dur {dur!r} (slices need dur >= 1)")
            if event.get("cat") == "gate":
                gate_slices += 1
            elif event.get("cat") == "leak":
                leak_slices += 1
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                _fail(f"{where}: counter event needs non-empty args")
            for k, v in args.items():
                if not isinstance(v, (int, float)):
                    _fail(f"{where}: counter arg {k!r} must be numeric, "
                          f"got {type(v).__name__}")

    expected = other.get("gate_closes")
    if expected is not None and gate_slices != expected:
        _fail(f"gate-closed slice count {gate_slices} != "
              f"otherData.gate_closes {expected}")
    expected_leaks = other.get("leaks")
    if expected_leaks is not None and leak_slices != expected_leaks:
        _fail(f"leak slice count {leak_slices} != "
              f"otherData.leaks {expected_leaks}")
    counts["gate_slices"] = gate_slices
    counts["leak_slices"] = leak_slices
    return counts


def validate_chrome_trace_file(path: str) -> Dict[str, int]:
    with open(path) as fh:
        try:
            trace = json.load(fh)
        except json.JSONDecodeError as exc:
            raise TraceValidationError(f"{path}: not valid JSON: {exc}")
    return validate_chrome_trace(trace)


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE.json",
              file=sys.stderr)
        return 2
    try:
        counts = validate_chrome_trace_file(argv[0])
    except TraceValidationError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"OK: {argv[0]} ({summary})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
