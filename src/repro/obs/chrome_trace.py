"""Chrome trace-event / Perfetto JSON export.

Renders one observed run as a Trace Event Format object (the JSON
format accepted by ``chrome://tracing`` and https://ui.perfetto.dev):

* **pid = core id**, one process per core, named via ``M`` metadata;
* **instruction slices** ("X" complete events): one slice per dynamic
  incarnation from dispatch to retire (or to the squash cycle for
  killed incarnations), laid out greedily across ``insn-<lane>``
  threads so overlapping in-flight instructions never collide;
* **gate track** (``tid = 0``, thread name "gate"): one slice per
  gate-closed interval, named by the locking store-buffer key;
* **occupancy counters** ("C" events): ROB / LQ / SB depth and the
  gate bit from the periodic sampler;
* **squash instants** ("i" events) on the gate track;
* **leakage track** (``tid = 999``, thread name "leakage"), present
  only when a :class:`~repro.leakage.watcher.LeakReport` is supplied:
  one slice per confirmed transient leak spanning its speculation
  window (perform → squash), args carrying the taint provenance
  (originating secret-load seq, spec bits, squash reason), plus
  instant markers for exposed (never-squashed) candidates.

Cycles are emitted as microseconds (1 cycle = 1 us) — Perfetto needs a
time unit and the absolute scale is meaningless for a simulator, so the
"us" readings are really cycle counts.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.leakage.watcher import LeakReport
    from repro.obs.session import ObsReport
    from repro.sim.pipetrace import PipeTracer
    from repro.sim.system import System

#: tid of the per-core gate/squash track; instruction lanes start above.
GATE_TID = 0
_INSN_TID_BASE = 1
#: tid of the per-core leakage track — far above any instruction lane.
LEAK_TID = 999

_KIND_COLORS = {
    "load": "thread_state_running",
    "store": "thread_state_iowait",
    "alu": "thread_state_runnable",
    "fence": "thread_state_unknown",
}


def _assign_lanes(spans: List[tuple]) -> List[int]:
    """Greedy interval-graph coloring: each span ``(start, end)`` gets
    the lowest lane whose previous span has ended.  Spans must be
    sorted by start."""
    lane_free_at: List[int] = []
    lanes = []
    for start, end in spans:
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= start:
                lane_free_at[lane] = end
                lanes.append(lane)
                break
        else:
            lane_free_at.append(end)
            lanes.append(len(lane_free_at) - 1)
    return lanes


def _core_instruction_events(core_id: int, tracer: "PipeTracer",
                             end_cycle: int) -> List[Dict]:
    events: List[Dict] = []
    drawable = []
    for record in tracer.records:
        if record.dispatched is None:
            continue
        if record.retired is not None:
            end = record.retired
        elif record.squashed is not None:
            end = record.squashed
        else:
            end = end_cycle
        # Zero-duration slices vanish in Perfetto; pad to one cycle.
        drawable.append((record, record.dispatched,
                         max(end, record.dispatched + 1)))

    drawable.sort(key=lambda item: (item[1], item[0].seq))
    lanes = _assign_lanes([(start, end) for _, start, end in drawable])
    max_lane = -1
    for (record, start, end), lane in zip(drawable, lanes):
        max_lane = max(max_lane, lane)
        name = f"{record.kind} #{record.seq}"
        if record.incarnation:
            name += f" (inc {record.incarnation})"
        args: Dict[str, object] = {
            "seq": record.seq,
            "incarnation": record.incarnation,
            "dispatched": record.dispatched,
            "issued": record.issued,
            "completed": record.completed,
            "retired": record.retired,
        }
        if record.slf:
            args["slf"] = True
        if record.gate_blocked_cycles:
            args["gate_blocked_cycles"] = record.gate_blocked_cycles
        if record.squashed is not None:
            args["squashed"] = record.squashed
            args["squash_reason"] = record.squash_reason
        event = {
            "name": name,
            "cat": "insn,squashed" if record.squashed is not None
                   else "insn",
            "ph": "X",
            "pid": core_id,
            "tid": _INSN_TID_BASE + lane,
            "ts": start,
            "dur": end - start,
            "args": args,
        }
        color = _KIND_COLORS.get(record.kind)
        if color and record.squashed is None:
            event["cname"] = color
        events.append(event)

    for lane in range(max_lane + 1):
        events.append({
            "name": "thread_name", "ph": "M", "pid": core_id,
            "tid": _INSN_TID_BASE + lane,
            "args": {"name": f"insn-{lane}"},
        })
    return events


def _core_gate_events(core_id: int, report: "ObsReport") -> List[Dict]:
    events: List[Dict] = [{
        "name": "thread_name", "ph": "M", "pid": core_id,
        "tid": GATE_TID, "args": {"name": "gate"},
    }]
    for interval in report.gate_intervals.get(core_id, ()):  # in order
        events.append({
            "name": f"gate closed (key=0x{interval.key:x})",
            "cat": "gate",
            "ph": "X",
            "pid": core_id,
            "tid": GATE_TID,
            "ts": interval.start,
            "dur": max(interval.cycles, 1),
            "cname": "terrible",
            "args": interval.to_dict(),
        })
    return events


def _core_counter_events(core_id: int,
                         report: "ObsReport") -> List[Dict]:
    events: List[Dict] = []
    for cycle, rob, lq, sb, closed in report.samples.get(core_id, ()):
        events.append({
            "name": "occupancy", "cat": "sample", "ph": "C",
            "pid": core_id, "tid": 0, "ts": cycle,
            "args": {"rob": rob, "lq": lq, "sb": sb},
        })
        events.append({
            "name": "gate_closed", "cat": "sample", "ph": "C",
            "pid": core_id, "tid": 0, "ts": cycle,
            "args": {"closed": closed},
        })
    return events


def _instant(name: str, cat: str, pid: int, tid: int, ts: int,
             args: Dict) -> Dict:
    """The one shape every thread-scoped instant marker uses (squash
    and leakage tracks both emit these)."""
    return {"name": name, "cat": cat, "ph": "i", "s": "t",
            "pid": pid, "tid": tid, "ts": ts, "args": args}


def _squash_instants(report: "ObsReport") -> List[Dict]:
    return [
        _instant(f"squash:{reason}", "squash", core_id, GATE_TID, cycle,
                 {"from_seq": from_seq, "flushed": flushed})
        for core_id, cycle, from_seq, reason, flushed
        in report.squash_events
    ]


def _leak_events(leak_report: "LeakReport") -> List[Dict]:
    """The leakage track: confirmed leaks as window-wide slices,
    exposed candidates as instants, named thread per leaking core."""
    events: List[Dict] = []
    cores = {c.core_id
             for c in leak_report.confirmed + leak_report.exposed}
    for core_id in sorted(cores):
        events.append({
            "name": "thread_name", "ph": "M", "pid": core_id,
            "tid": LEAK_TID, "args": {"name": "leakage"},
        })
    for leak in leak_report.confirmed:
        events.append({
            "name": f"leak line {leak.line} (secret #{leak.source})",
            "cat": "leak",
            "ph": "X",
            "pid": leak.core_id,
            "tid": LEAK_TID,
            "ts": leak.cycle,
            "dur": max(leak.window, 1),
            "cname": "terrible",
            "args": leak.to_dict(),
        })
        events.append(_instant(f"squashed:{leak.squash_reason}", "leak",
                               leak.core_id, LEAK_TID, leak.squash_cycle,
                               {"seq": leak.seq, "line": leak.line}))
    for leak in leak_report.exposed:
        events.append(_instant(f"exposed line {leak.line}", "leak",
                               leak.core_id, LEAK_TID, leak.cycle,
                               leak.to_dict()))
    return events


def build_chrome_trace(system: "System", report: "ObsReport",
                       stats=None, leak_report=None) -> Dict:
    """Assemble the Trace Event Format dict for one finished run.

    ``system`` supplies the per-core :class:`PipeTracer` objects (cores
    without a tracer simply contribute no instruction slices);
    ``report`` supplies gate intervals, samples, and squash events;
    ``leak_report`` (optional) adds the per-core leakage track.
    """
    events: List[Dict] = []
    for core in system.cores:
        core_id = core.core_id
        events.append({
            "name": "process_name", "ph": "M", "pid": core_id,
            "tid": 0, "args": {"name": f"core {core_id}"},
        })
        events.append({
            "name": "process_sort_index", "ph": "M", "pid": core_id,
            "tid": 0, "args": {"sort_index": core_id},
        })
        events.extend(_core_gate_events(core_id, report))
        if core.tracer is not None:
            events.extend(_core_instruction_events(
                core_id, core.tracer, report.end_cycle))
        events.extend(_core_counter_events(core_id, report))
    events.extend(_squash_instants(report))
    if leak_report is not None:
        events.extend(_leak_events(leak_report))

    metadata = {
        "policy": report.policy,
        "end_cycle": report.end_cycle,
        "gate_intervals": report.gate_interval_count(),
        "time-unit": "cycles (rendered as us)",
    }
    if stats is not None:
        total = stats.total
        metadata["retired"] = total.retired_instructions
        metadata["gate_closes"] = total.gate_closes
    if leak_report is not None:
        metadata["leaks"] = len(leak_report.confirmed)
        metadata["leaked_lines"] = leak_report.leaked_lines
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": metadata,
    }


def write_chrome_trace(path, system: "System", report: "ObsReport",
                       stats=None, leak_report=None) -> Dict:
    """Build and write the trace JSON; returns the built dict."""
    trace = build_chrome_trace(system, report, stats, leak_report)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace
