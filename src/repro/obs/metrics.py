"""A small metrics registry for long-lived processes.

The simulator's own counters live in :class:`~repro.sim.stats.SystemStats`
and are strictly deterministic.  A *service* wrapped around the simulator
(``repro.serve``) additionally needs operational metrics — queue depths,
cache hit rates, request latencies — that are wall-clock flavoured and
must be exportable at any moment while work is in flight.  This registry
is that layer: named counters, gauges (sampled via callables so the
registry never holds stale copies), and :class:`LogHistogram`
distributions, all snapshotting to one JSON-safe dict.

It deliberately stays dependency-free and synchronous: callers on an
asyncio loop mutate plain ints from one thread, which is safe under the
GIL for the single-writer pattern the service uses.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from repro.obs.samplers import LogHistogram

Number = Union[int, float]
#: What a gauge callable may return: any JSON-safe value.  Scalars for
#: classic gauges (queue depth, uptime); small dicts/lists for
#: structured ones (the fleet's per-node liveness map).
JsonValue = Union[int, float, str, bool, None, Dict, list]


class MetricsRegistry:
    """Named counters, gauges, and log-bucketed histograms.

    * ``counter(name)`` / ``inc(name, by)`` — monotone ints.
    * ``gauge(name, fn)`` — a callable sampled at snapshot time, so the
      exported value is always current (queue depth, uptime, ...).
    * ``histogram(name)`` — a shared :class:`LogHistogram`; record with
      ``observe(name, value)`` (non-negative ints, e.g. milliseconds).

    ``snapshot()`` returns ``{"counters": ..., "gauges": ...,
    "histograms": {name: summary+buckets}}`` — stable keys, JSON-safe,
    and cheap enough to serve from a hot ``/metrics`` endpoint.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Callable[[], JsonValue]] = {}
        self._histograms: Dict[str, LogHistogram] = {}

    # -- counters ------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value (registering the counter at 0 if new)."""
        return self._counters.setdefault(name, 0)

    def inc(self, name: str, by: int = 1) -> int:
        value = self._counters.get(name, 0) + by
        self._counters[name] = value
        return value

    # -- gauges --------------------------------------------------------

    def gauge(self, name: str, fn: Callable[[], JsonValue]) -> None:
        """Register (or replace) a gauge sampled at snapshot time."""
        self._gauges[name] = fn

    def remove_gauge(self, name: str) -> None:
        """Drop a gauge (e.g. one bound to a fleet node that left);
        unknown names are a no-op."""
        self._gauges.pop(name, None)

    # -- histograms ----------------------------------------------------

    def histogram(self, name: str) -> LogHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LogHistogram()
        return hist

    def observe(self, name: str, value: int) -> None:
        self.histogram(name).add(value)

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict:
        """One JSON-safe dict of everything the registry knows.

        A gauge whose callable raises exports the error string instead
        of taking the whole endpoint down — /metrics must stay servable
        while the thing it measures is on fire.
        """
        gauges: Dict[str, object] = {}
        for name, fn in self._gauges.items():
            try:
                gauges[name] = fn()
            except Exception as exc:
                gauges[name] = f"error: {type(exc).__name__}: {exc}"
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                name: {**hist.summary(), "buckets": [
                    {"lo": lo, "hi": hi, "count": n}
                    for lo, hi, n in hist.buckets()]}
                for name, hist in sorted(self._histograms.items())},
        }
