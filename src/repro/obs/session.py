"""Standard observability wiring: watchers, session, and report.

An :class:`ObsSession` owns a :class:`~repro.obs.bus.ProbeBus`, attaches
the standard watchers to it, and (once the system exists) installs the
periodic occupancy sampler.  After the run, :meth:`ObsSession.report`
folds everything into an :class:`ObsReport`:

* **gate-closed intervals** per core, keyed by the locking store
  (close -> open correlation of ``gate.close``/``gate.open``);
* **histograms** (log-bucketed): gate-stall duration per blocked load,
  gate lock duration per episode, SLF forwarding-window length
  (forward -> L1-write distance), and SB drain latency
  (retire -> L1-write distance);
* **counters**: squash episodes/flushed instructions by reason,
  coherence invalidations and evictions observed by the cores;
* **occupancy samples** for ROB / LQ / SQ-SB and the gate bit.

The report serializes to JSONL (one self-describing record per line)
and to a compact dict for embedding in sweep-cache payloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.obs.bus import SQUASH_REASONS, ProbeBus
from repro.obs.samplers import LogHistogram, OccupancySampler, Sample

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.isa import Trace
    from repro.sim.config import SystemConfig
    from repro.sim.stats import SystemStats
    from repro.sim.system import System


@dataclass
class GateInterval:
    """One gate-closed episode on one core."""

    core_id: int
    key: int
    load_seq: int               # the SLF load that closed the gate
    start: int
    end: int = -1               # -1 while still open
    open_reason: str = ""       # "key" | "drain" | "eof"

    @property
    def cycles(self) -> int:
        return (self.end - self.start) if self.end >= 0 else 0

    def to_dict(self) -> Dict:
        return {
            "core": self.core_id, "key": self.key,
            "load_seq": self.load_seq, "start": self.start,
            "end": self.end, "cycles": self.cycles,
            "open_reason": self.open_reason,
        }


class GateWatcher:
    """Correlates ``gate.close``/``gate.open`` into closed intervals."""

    def __init__(self, bus: ProbeBus) -> None:
        self.intervals: Dict[int, List[GateInterval]] = {}
        self._open: Dict[int, GateInterval] = {}    # core -> live episode
        self.hist_lock = LogHistogram()
        bus.subscribe("gate.close", self._on_close)
        bus.subscribe("gate.open", self._on_open)

    def _on_close(self, core_id: int, cycle: int, key: int,
                  load_seq: int) -> None:
        interval = GateInterval(core_id, key, load_seq, cycle)
        self.intervals.setdefault(core_id, []).append(interval)
        self._open[core_id] = interval

    def _on_open(self, core_id: int, cycle: int, key: int,
                 reason: str) -> None:
        interval = self._open.pop(core_id, None)
        if interval is None:  # pragma: no cover - defensive
            return
        interval.end = cycle
        interval.open_reason = reason
        self.hist_lock.add(interval.cycles)

    def finalize(self, end_cycle: int) -> None:
        """Close any episode still open when the run ended."""
        for interval in self._open.values():
            interval.end = end_cycle
            interval.open_reason = "eof"
            self.hist_lock.add(interval.cycles)
        self._open.clear()

    def interval_count(self) -> int:
        return sum(len(v) for v in self.intervals.values())


class StallWatcher:
    """Histograms of retire-blocked episodes from ``gate.stall``."""

    def __init__(self, bus: ProbeBus) -> None:
        self.hist_gate = LogHistogram()       # blocked behind closed gate
        self.hist_slf_sb = LogHistogram()     # SLFSpec: SLF load vs SB
        bus.subscribe("gate.stall", self._on_stall)

    def _on_stall(self, core_id: int, cycle: int, load_seq: int,
                  blocked: int, reason: str) -> None:
        if reason == "gate":
            self.hist_gate.add(blocked)
        else:
            self.hist_slf_sb.add(blocked)


class SLFWindowWatcher:
    """Forward -> L1-write distance per SLF load (the paper's
    vulnerability window for a forwarded value)."""

    def __init__(self, bus: ProbeBus) -> None:
        self.hist = LogHistogram()
        self._pending: Dict[tuple, List[int]] = {}  # (core,key) -> cycles
        bus.subscribe("slf.forward", self._on_forward)
        bus.subscribe("sb.write_l1", self._on_write)

    def _on_forward(self, core_id: int, cycle: int, load_seq: int,
                    store_seq: int, key: int) -> None:
        self._pending.setdefault((core_id, key), []).append(cycle)

    def _on_write(self, core_id: int, cycle: int, store_seq: int,
                  addr: int, drain: int, key: int) -> None:
        for start in self._pending.pop((core_id, key), ()):
            self.hist.add(cycle - start)


class DrainWatcher:
    """SB drain latency (retire -> L1 write) from ``sb.write_l1``."""

    def __init__(self, bus: ProbeBus) -> None:
        self.hist = LogHistogram()
        bus.subscribe("sb.write_l1", self._on_write)

    def _on_write(self, core_id: int, cycle: int, store_seq: int,
                  addr: int, drain: int, key: int) -> None:
        self.hist.add(drain)


class SquashWatcher:
    """Squash episodes by reason, with a bounded event log for the
    trace exporter.  The probe payload does not carry the reason (it is
    the probe's name), so one bound handler is subscribed per reason."""

    def __init__(self, bus: ProbeBus, limit: int = 100_000) -> None:
        self.episodes: Dict[str, int] = {}
        self.flushed: Dict[str, int] = {}
        self.events: List[tuple] = []     # (core, cycle, seq, reason, n)
        self.limit = limit
        for reason in SQUASH_REASONS:
            bus.subscribe(f"squash.{reason}",
                          self._handler_for(reason))

    def _handler_for(self, reason: str):
        def handler(core_id: int, cycle: int, from_seq: int,
                    flushed: int) -> None:
            self.episodes[reason] = self.episodes.get(reason, 0) + 1
            self.flushed[reason] = self.flushed.get(reason, 0) + flushed
            if len(self.events) < self.limit:
                self.events.append((core_id, cycle, from_seq, reason,
                                    flushed))
        return handler


class MesiWatcher:
    """Coherence removals observed by the cores."""

    def __init__(self, bus: ProbeBus) -> None:
        self.invals_by_core: Dict[int, int] = {}
        self.evicts_by_core: Dict[int, int] = {}
        bus.subscribe("mesi.inval", self._on_inval)
        bus.subscribe("mesi.evict", self._on_evict)

    def _on_inval(self, core_id: int, cycle: int, line: int,
                  requestor: int, present: bool) -> None:
        if present:
            self.invals_by_core[core_id] = \
                self.invals_by_core.get(core_id, 0) + 1

    def _on_evict(self, core_id: int, cycle: int, line: int) -> None:
        self.evicts_by_core[core_id] = \
            self.evicts_by_core.get(core_id, 0) + 1


@dataclass
class ObsReport:
    """Everything one observed run produced, ready to serialize."""

    end_cycle: int = 0
    policy: str = ""
    sample_interval: int = 0
    gate_intervals: Dict[int, List[GateInterval]] = field(
        default_factory=dict)
    histograms: Dict[str, LogHistogram] = field(default_factory=dict)
    counters: Dict[str, Dict] = field(default_factory=dict)
    samples: Dict[int, List[Sample]] = field(default_factory=dict)
    occupancy: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: (core, cycle, from_seq, reason, flushed) — bounded event log.
    squash_events: List[tuple] = field(default_factory=list)

    def gate_interval_count(self) -> int:
        return sum(len(v) for v in self.gate_intervals.values())

    def gate_closed_fraction(self) -> Dict[int, float]:
        """Exact per-core fraction of cycles the gate was closed,
        integrated over the recorded intervals."""
        out: Dict[int, float] = {}
        for core_id, intervals in self.gate_intervals.items():
            closed = sum(i.cycles for i in intervals)
            out[core_id] = (closed / self.end_cycle
                            if self.end_cycle else 0.0)
        return out

    def top_gate_intervals(self, top: int = 5) -> List[GateInterval]:
        everything = [i for v in self.gate_intervals.values() for i in v]
        everything.sort(key=lambda i: i.cycles, reverse=True)
        return everything[:top]

    # -- serialization --------------------------------------------------

    def to_dict(self, include_samples: bool = False) -> Dict:
        """Compact JSON-safe form.  This is what sweep-cache payloads
        embed; full sample series are included only on request."""
        out: Dict = {
            "end_cycle": self.end_cycle,
            "policy": self.policy,
            "sample_interval": self.sample_interval,
            "gate": {
                "intervals": self.gate_interval_count(),
                "intervals_per_core": {
                    str(cid): len(v)
                    for cid, v in self.gate_intervals.items()},
                "closed_fraction": {
                    str(cid): round(frac, 6)
                    for cid, frac in self.gate_closed_fraction().items()},
            },
            "histograms": {name: hist.to_dict()
                           for name, hist in self.histograms.items()},
            "counters": self.counters,
            "occupancy": {str(cid): summary
                          for cid, summary in self.occupancy.items()},
        }
        if include_samples:
            out["samples"] = {str(cid): [list(s) for s in series]
                              for cid, series in self.samples.items()}
        return out

    def iter_jsonl_records(self):
        """Self-describing records, one per JSONL line."""
        yield {"type": "meta", "end_cycle": self.end_cycle,
               "policy": self.policy,
               "sample_interval": self.sample_interval}
        for name, hist in self.histograms.items():
            record = {"type": "histogram", "name": name}
            record.update(hist.to_dict())
            record["summary"] = hist.summary()
            yield record
        yield {"type": "counters", **self.counters}
        for cid, frac in self.gate_closed_fraction().items():
            yield {"type": "gate_summary", "core": cid,
                   "intervals": len(self.gate_intervals.get(cid, ())),
                   "closed_fraction": round(frac, 6)}
        for cid, intervals in sorted(self.gate_intervals.items()):
            for interval in intervals:
                yield {"type": "gate_interval", **interval.to_dict()}
        for cid, summary in sorted(self.occupancy.items()):
            yield {"type": "occupancy_summary", "core": cid, **summary}
        for cid, series in sorted(self.samples.items()):
            for cycle, rob, lq, sb, closed in series:
                yield {"type": "sample", "core": cid, "cycle": cycle,
                       "rob": rob, "lq": lq, "sb": sb,
                       "gate_closed": closed}

    def write_jsonl(self, path) -> int:
        """Write the JSONL metrics file; returns the record count."""
        n = 0
        with open(path, "w") as fh:
            for record in self.iter_jsonl_records():
                fh.write(json.dumps(record) + "\n")
                n += 1
        return n


class ObsSession:
    """One observed run: a bus, the standard watchers, the sampler."""

    def __init__(self, sample_interval: int = 64,
                 event_limit: int = 100_000) -> None:
        self.bus = ProbeBus()
        self.gate = GateWatcher(self.bus)
        self.stalls = StallWatcher(self.bus)
        self.slf = SLFWindowWatcher(self.bus)
        self.drain = DrainWatcher(self.bus)
        self.squash = SquashWatcher(self.bus, event_limit)
        self.mesi = MesiWatcher(self.bus)
        self.sampler = OccupancySampler(sample_interval)
        self._system: Optional["System"] = None

    def install(self, system: "System") -> None:
        """Start the periodic sampler on the (not yet run) system."""
        self._system = system
        self.sampler.install(system)

    def report(self, stats: "SystemStats") -> ObsReport:
        """Fold the watcher state into an :class:`ObsReport`."""
        self.gate.finalize(stats.execution_cycles)
        policy = self._system.policy_name if self._system else ""
        return ObsReport(
            end_cycle=stats.execution_cycles,
            policy=policy,
            sample_interval=self.sampler.interval,
            gate_intervals=self.gate.intervals,
            histograms={
                "gate_lock": self.gate.hist_lock,
                "gate_stall": self.stalls.hist_gate,
                "slf_retire_stall": self.stalls.hist_slf_sb,
                "slf_window": self.slf.hist,
                "sb_drain": self.drain.hist,
            },
            counters={
                "squash_episodes": dict(self.squash.episodes),
                "squash_flushed": dict(self.squash.flushed),
                "mesi_invals_by_core": {
                    str(c): n
                    for c, n in sorted(self.mesi.invals_by_core.items())},
                "mesi_evicts_by_core": {
                    str(c): n
                    for c, n in sorted(self.mesi.evicts_by_core.items())},
            },
            samples=self.sampler.samples,
            occupancy=self.sampler.summary(),
            squash_events=list(self.squash.events),
        )


def observe_run(traces: Sequence["Trace"], policy: str,
                config: Optional["SystemConfig"] = None,
                warm_caches: object = True,
                detect_violations: bool = False,
                trace_pipeline: bool = False,
                sample_interval: int = 64,
                max_cycles: int = 500_000_000):
    """Run ``traces`` under ``policy`` with full observability.

    Returns ``(stats, report, system)`` — the usual
    :class:`~repro.sim.stats.SystemStats`, the finalized
    :class:`ObsReport`, and the (finished) system, whose per-core
    ``tracer`` objects feed the Chrome trace exporter when
    ``trace_pipeline`` is on.
    """
    from repro.sim.system import System

    session = ObsSession(sample_interval=sample_interval)
    system = System(traces, policy, config,
                    detect_violations=detect_violations,
                    warm_caches=warm_caches,
                    trace_pipeline=trace_pipeline,
                    probes=session.bus)
    session.install(system)
    stats = system.run(max_cycles)
    return stats, session.report(stats), system
