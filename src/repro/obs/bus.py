"""The probe bus: named event probes with a zero-overhead off switch.

Instrumented components ask the bus for a probe **once, at attach time**
(core/controller construction)::

    self._p_forward = bus.resolve("slf.forward")

and fire it behind an ``is not None`` guard on the hot path::

    if self._p_forward is not None:
        self._p_forward(core_id, cycle, load_seq, store_seq, key)

:meth:`ProbeBus.resolve` returns ``None`` when the probe has no
subscriber, so a disabled probe costs exactly one attribute load and
pointer compare — the same no-op contract the pipeline already uses for
its optional ``tracer``.  The default bus (:data:`NULL_BUS`) resolves
*everything* to ``None`` and refuses subscriptions, so an uninstrumented
run never builds a subscriber table at all.

Because resolution is done at attach time, subscribers must be attached
**before** the instrumented objects are constructed (the
:class:`~repro.obs.session.ObsSession` does this: watchers subscribe in
its ``__init__``, then the ``System`` is built with ``probes=session.bus``).

Probe names are registered in :data:`PROBE_SIGNATURES`; resolving or
subscribing to an unknown name raises, which catches typos at wiring
time instead of silently observing nothing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

ProbeFn = Callable[..., None]

#: Registry of every probe the simulator can fire, with the positional
#: payload each delivers.  ``cycle`` is always ``engine.now`` at fire
#: time.  Keys are store-buffer keys (slot | sorting-bit << 31).
PROBE_SIGNATURES: Dict[str, str] = {
    "gate.close": "(core_id, cycle, key, load_seq)",
    "gate.open": "(core_id, cycle, key, reason)",     # reason: key|drain
    "gate.stall": "(core_id, cycle, load_seq, blocked_cycles, reason)",
    "slf.forward": "(core_id, cycle, load_seq, store_seq, key)",
    "sb.write_l1": "(core_id, cycle, store_seq, addr, drain_cycles, key)",
    "squash.inval": "(core_id, cycle, from_seq, flushed)",
    "squash.evict": "(core_id, cycle, from_seq, flushed)",
    "squash.memdep": "(core_id, cycle, from_seq, flushed)",
    "squash.fault": "(core_id, cycle, from_seq, flushed)",
    "mesi.inval": "(core_id, cycle, line, requestor, present)",
    "mesi.evict": "(core_id, cycle, line)",
    # spec: bit 1 = M-speculative (performed past an older unperformed
    # load), bit 2 = SA-speculative under the active policy's floor.
    "load.perform": "(core_id, cycle, seq, addr, line, slf, spec)",
    "cache.fill": "(core_id, cycle, line)",
    "prefetch.issue": "(core_id, cycle, line)",
    "noc.msg": "(cycle, msg_class)",
}

#: Every squash reason the pipeline can fire, in probe-name order.
#: ``pipeline._squash``, the obs SquashWatcher and the leakage watcher
#: all iterate this tuple so a new reason cannot be half-wired.
SQUASH_REASONS = ("inval", "evict", "memdep", "fault")


def resolve_squash_probes(bus: "ProbeBus") -> Dict[str, Optional[ProbeFn]]:
    """Resolve the per-reason ``squash.*`` probes once, at attach time.

    Shared by the pipeline (fire side) and the watchers (shape side) so
    every squash lane carries the same ``(core_id, cycle, from_seq,
    flushed)`` payload.
    """
    return {reason: bus.resolve(f"squash.{reason}")
            for reason in SQUASH_REASONS}


def _check_name(name: str) -> None:
    if name not in PROBE_SIGNATURES:
        raise KeyError(
            f"unknown probe {name!r}; known probes: "
            + ", ".join(sorted(PROBE_SIGNATURES)))


class ProbeBus:
    """Subscriber registry for the named probes in
    :data:`PROBE_SIGNATURES`."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[ProbeFn]] = {}

    def subscribe(self, pattern: str, fn: ProbeFn) -> None:
        """Attach ``fn`` to every probe matching ``pattern``.

        ``pattern`` is an exact probe name, a ``prefix.*`` wildcard
        (e.g. ``"squash.*"``), or ``"*"`` for everything.  Matching is
        done against the static registry, so a pattern that matches
        nothing is an error.
        """
        names = self._match(pattern)
        if not names:
            _check_name(pattern)  # raises with the known-probe list
        for name in names:
            self._subscribers.setdefault(name, []).append(fn)

    def _match(self, pattern: str) -> List[str]:
        if pattern == "*":
            return list(PROBE_SIGNATURES)
        if pattern.endswith(".*"):
            prefix = pattern[:-1]  # keep the dot
            return [n for n in PROBE_SIGNATURES if n.startswith(prefix)]
        return [pattern] if pattern in PROBE_SIGNATURES else []

    def subscribers(self, name: str) -> List[ProbeFn]:
        _check_name(name)
        return list(self._subscribers.get(name, ()))

    @property
    def active(self) -> bool:
        """True if any probe has at least one subscriber."""
        return any(self._subscribers.values())

    def resolve(self, name: str) -> Optional[ProbeFn]:
        """The fire function for ``name``, or ``None`` if unobserved.

        With one subscriber the subscriber itself is returned (no
        dispatch wrapper on the fire path); with several, a closure that
        calls each in subscription order.
        """
        _check_name(name)
        subs = self._subscribers.get(name)
        if not subs:
            return None
        if len(subs) == 1:
            return subs[0]
        pinned = tuple(subs)

        def fire(*args: object) -> None:
            for fn in pinned:
                fn(*args)

        return fire


class _NullBus(ProbeBus):
    """The disabled bus: resolves every probe to ``None`` and rejects
    subscriptions (subscribe to a real :class:`ProbeBus` instead)."""

    def subscribe(self, pattern: str, fn: ProbeFn) -> None:
        raise RuntimeError(
            "cannot subscribe to NULL_BUS; create a ProbeBus (or an "
            "ObsSession) and pass it to the System under observation")

    def resolve(self, name: str) -> None:
        _check_name(name)
        return None


#: Shared disabled bus used whenever no observer is attached.
NULL_BUS = _NullBus()
