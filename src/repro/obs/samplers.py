"""Time-series samplers and log-bucketed histograms.

:class:`LogHistogram` is the distribution container used everywhere in
the observability layer: power-of-two buckets over non-negative integer
cycle counts, constant memory, exact ``count``/``total``/``max``, and a
mergeable, JSON-round-trippable representation — which is what lets the
sweep runner carry per-cell distributions back from worker processes.

:class:`OccupancySampler` periodically records ROB / LQ / SQ-SB
occupancy and the retire-gate state of every core, driven by the event
engine itself (a self-rescheduling event), so a disabled run schedules
nothing at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System

#: One occupancy sample: (cycle, rob, lq, sb, gate_closed).
Sample = Tuple[int, int, int, int, int]


class LogHistogram:
    """Histogram of non-negative ints in power-of-two buckets.

    Bucket 0 holds the value 0; bucket ``b`` (b >= 1) holds values in
    ``[2**(b-1), 2**b - 1]`` — i.e. the bucket index is the value's bit
    length.  Percentiles are resolved to a bucket's upper bound (clamped
    to the observed maximum), which is the usual log-histogram
    trade-off: cheap to collect, at most 2x relative error per quantile.
    """

    __slots__ = ("count", "total", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.max = 0
        self._buckets: Dict[int, int] = {}

    def add(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative sample: {value}")
        bucket = value.bit_length()
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def merge(self, other: "LogHistogram") -> None:
        for bucket, n in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + n
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int, int]]:
        """Occupied buckets as ``(lo, hi, count)``, ascending."""
        out = []
        for bucket in sorted(self._buckets):
            if bucket == 0:
                lo = hi = 0
            else:
                lo, hi = 1 << (bucket - 1), (1 << bucket) - 1
            out.append((lo, hi, self._buckets[bucket]))
        return out

    def percentile(self, p: float) -> int:
        """Upper bound of the bucket containing the p-th percentile
        (0 < p <= 100), clamped to the observed maximum."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self.count == 0:
            return 0
        threshold = self.count * p / 100.0
        seen = 0
        for lo, hi, n in self.buckets():
            seen += n
            if seen >= threshold:
                return min(hi, self.max)
        return self.max  # pragma: no cover - float-edge fallback

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 2),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def to_dict(self) -> Dict:
        """JSON-safe form; exact under :meth:`from_dict` round-trip."""
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "buckets": {str(b): n for b, n in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LogHistogram":
        hist = cls()
        hist.count = data["count"]
        hist.total = data["total"]
        hist.max = data["max"]
        hist._buckets = {int(b): n for b, n in data["buckets"].items()}
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LogHistogram n={self.count} mean={self.mean:.1f} "
                f"max={self.max}>")


class OccupancySampler:
    """Periodic per-core occupancy + gate-state samples.

    Installed on a running :class:`~repro.sim.system.System`, the
    sampler schedules itself on the system's engine every ``interval``
    cycles.  It stops automatically when every core has finished; as a
    safety valve it also stops when nothing else is scheduled (a wedged
    simulation must still hit the normal deadlock diagnostics, not be
    kept alive — and filled with samples — by the sampler itself).
    """

    def __init__(self, interval: int = 64, limit: int = 1_000_000) -> None:
        if interval < 1:
            raise ValueError("sample interval must be >= 1")
        self.interval = interval
        self.limit = limit
        self.samples: Dict[int, List[Sample]] = {}
        self._system: Optional["System"] = None

    def install(self, system: "System") -> None:
        self._system = system
        for core in system.cores:
            self.samples[core.core_id] = []
        system.engine.schedule(self.interval, self._sample)

    def _sample(self) -> None:
        system = self._system
        if system is None or system.done:
            return
        engine = system.engine
        # Safety valve: at dispatch time the sampler's own event has
        # been popped, so pending == 0 means no simulation event is
        # outstanding — the run is deadlocked and rescheduling would
        # only mask it from the deadlock diagnostics.
        if engine.pending == 0:
            return

        now = engine.now
        taken = 0
        for core in system.cores:
            series = self.samples[core.core_id]
            if len(series) >= self.limit:
                continue
            gate = getattr(core.policy, "gate", None)
            closed = 1 if (gate is not None and gate.closed) else 0
            series.append((now, len(core.rob), len(core.lq),
                           len(core.sb), closed))
            taken += 1
        if taken:
            engine.schedule(self.interval, self._sample)

    def summary(self) -> Dict[int, Dict[str, float]]:
        """Per-core mean/max occupancy over the sampled series."""
        out: Dict[int, Dict[str, float]] = {}
        for core_id, series in self.samples.items():
            if not series:
                out[core_id] = {"samples": 0}
                continue
            n = len(series)
            out[core_id] = {
                "samples": n,
                "rob_mean": round(sum(s[1] for s in series) / n, 2),
                "rob_max": max(s[1] for s in series),
                "lq_mean": round(sum(s[2] for s in series) / n, 2),
                "lq_max": max(s[2] for s in series),
                "sb_mean": round(sum(s[3] for s in series) / n, 2),
                "sb_max": max(s[3] for s in series),
                "gate_closed_frac": round(
                    sum(s[4] for s in series) / n, 4),
            }
        return out
