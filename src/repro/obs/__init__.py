"""``repro.obs`` — the observability layer.

A central probe bus threaded through the engine, pipeline, retire gate,
store buffer, load queue, and MESI coherence, plus the standard
subscribers that turn probe firings into artefacts:

* :class:`~repro.obs.bus.ProbeBus` — named event probes that resolve to
  literal ``None`` when nothing subscribes, so disabled-mode overhead is
  a single ``is not None`` test at each site (the same contract as the
  pre-existing ``tracer`` hooks);
* :class:`~repro.obs.session.ObsSession` — one-stop wiring of the
  standard watchers (gate intervals, stall/window/drain histograms,
  squash and coherence counters) and the periodic occupancy sampler;
* :func:`~repro.obs.session.observe_run` — run a workload with full
  observability and get ``(stats, report, system)`` back;
* :mod:`~repro.obs.chrome_trace` — Chrome trace-event / Perfetto JSON
  export of instruction lifetimes, gate-closed intervals, and occupancy
  counters;
* :mod:`~repro.obs.validate` — schema validation for the emitted trace
  (also a CLI: ``python -m repro.obs.validate trace.json``);
* :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  histograms for long-lived processes (the ``repro.serve``
  ``/v1/metrics`` endpoint), snapshotting to one JSON-safe dict.

See ``docs/OBSERVABILITY.md`` for the probe name registry and the
disabled-probe no-op guarantee.
"""

from repro.obs.bus import NULL_BUS, PROBE_SIGNATURES, ProbeBus
from repro.obs.chrome_trace import build_chrome_trace, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.samplers import LogHistogram, OccupancySampler
from repro.obs.session import ObsReport, ObsSession, observe_run
from repro.obs.validate import TraceValidationError, validate_chrome_trace

__all__ = [
    "NULL_BUS",
    "PROBE_SIGNATURES",
    "ProbeBus",
    "LogHistogram",
    "MetricsRegistry",
    "OccupancySampler",
    "ObsReport",
    "ObsSession",
    "observe_run",
    "build_chrome_trace",
    "write_chrome_trace",
    "TraceValidationError",
    "validate_chrome_trace",
]
