"""The lint engine: files, suppressions, the rule registry, the runner.

A :class:`Rule` inspects one parsed :class:`SourceFile` and yields
:class:`Violation` records.  Rules register themselves with
:func:`register` (see :mod:`repro.lint.discipline` for the rule set) and
declare a *scope*:

``hot``
    only files in the determinism-critical packages
    (:data:`HOT_PACKAGES` under ``repro/``) are checked;
``obs``
    the hot packages plus the observer-side packages
    (:data:`OBS_PACKAGES`): the probe-discipline rules hold wherever
    probes are resolved, fired, *or consumed* — including the leakage
    watcher, which subscribes from outside the hot loop;
``all``
    every file under the linted tree is checked.

Suppression
-----------

A violation is suppressed by a comment on the offending line::

    t0 = time.time()          # lint: ignore[det-wallclock]
    cache = {}                # lint: ignore            (all rules)

and a whole file opts out of one rule with a top-of-file marker::

    # lint: file-ignore[hot-slots]

Suppressions are counted per package in the report so CI can enforce
"zero suppressions in ``sim``/``cpu``/``core``" (the repo's acceptance
bar — fix the code, don't baseline it).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Packages under ``repro/`` whose modules drive the deterministic
#: simulation hot loop; the determinism and zero-overhead rules apply
#: here (everything else only gets the repo-wide hygiene rules).
HOT_PACKAGES = ("sim", "cpu", "core", "coherence", "noc", "memory")

#: The hot packages plus the packages that *consume* probes (the obs
#: stack and the leakage instrument).  The ``obs-*`` probe-discipline
#: rules apply here: a watcher that resolves per-event or subscribes to
#: a misspelled probe breaks the observability contract just as surely
#: as a bad fire site in the pipeline.
OBS_PACKAGES = HOT_PACKAGES + ("obs", "leakage")

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*(file-)?ignore(?:\[([A-Za-z0-9_,\- ]+)\])?")

#: Marker meaning "every rule" in a suppression set.
ALL_RULES = "*"


@dataclass(frozen=True)
class Violation:
    """One finding: a rule tripped at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass(frozen=True)
class Suppression:
    """A ``# lint: ignore`` marker found in a file."""

    path: str
    line: int
    rules: Set[str]          # rule ids, or {ALL_RULES}
    file_level: bool


class SourceFile:
    """A parsed source file plus its suppression markers."""

    __slots__ = ("path", "package", "text", "lines", "tree",
                 "line_suppressions", "file_suppressions", "suppressions")

    def __init__(self, path: str, text: str,
                 package: Optional[str] = None) -> None:
        self.path = path
        self.package = package if package is not None \
            else package_of(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        self.suppressions: List[Suppression] = []
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        # Tokenize rather than grep the raw lines so that markers quoted
        # inside strings/docstrings (e.g. the examples in this module's
        # own docstring) are not mistaken for live suppressions.
        try:
            comments = [
                (token.start[0], token.string)
                for token in tokenize.generate_tokens(
                    io.StringIO(self.text).readline)
                if token.type == tokenize.COMMENT]
        except tokenize.TokenError:  # pragma: no cover - ast parsed OK
            comments = []
        for lineno, comment in comments:
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                continue
            file_level = bool(match.group(1))
            names = match.group(2)
            rules = ({ALL_RULES} if names is None else
                     {name.strip() for name in names.split(",")
                      if name.strip()})
            self.suppressions.append(Suppression(
                path=self.path, line=lineno, rules=rules,
                file_level=file_level))
            if file_level:
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def suppressed(self, rule: str, line: int) -> bool:
        if ALL_RULES in self.file_suppressions \
                or rule in self.file_suppressions:
            return True
        marks = self.line_suppressions.get(line)
        return marks is not None and (ALL_RULES in marks or rule in marks)

    @property
    def is_hot(self) -> bool:
        return self.package in HOT_PACKAGES

    @property
    def is_obs(self) -> bool:
        return self.package in OBS_PACKAGES


def package_of(path: str) -> Optional[str]:
    """The ``repro`` sub-package a file belongs to (``"cpu"`` for
    ``src/repro/cpu/pipeline.py``), or None outside the tree.  The
    lookup keys on the last ``repro`` path component so fixture trees
    (``tests/fixtures/lint/repro/sim/...``) scope exactly like the real
    tree."""
    parts = os.path.normpath(path).split(os.sep)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i + 1 < len(parts) - 1:
            return parts[i + 1]
        if parts[i] == "repro":
            return ""          # repro/<file>.py: top-level module
    return None


class LintVisitor(ast.NodeVisitor):
    """``ast.NodeVisitor`` that tracks ancestors and the enclosing
    function, the two pieces of context every discipline rule needs.
    Subclass and use :attr:`ancestors` / :attr:`function_stack` from
    ``visit_*`` methods; call :meth:`walk` on a tree root."""

    def __init__(self) -> None:
        self.ancestors: List[ast.AST] = []
        self.function_stack: List[ast.AST] = []

    def walk(self, tree: ast.AST) -> None:
        self.visit(tree)

    def visit(self, node: ast.AST) -> None:
        is_function = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        if is_function:
            self.function_stack.append(node)
        method = getattr(self, "visit_" + node.__class__.__name__, None)
        if method is not None:
            method(node)
        self.ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.ancestors.pop()
        if is_function:
            self.function_stack.pop()

    def generic_visit(self, node: ast.AST) -> None:  # pragma: no cover
        # Child traversal happens in visit(); generic_visit must not
        # re-descend or every node would be visited twice.
        pass


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` (kebab-case, stable — it is the
    suppression key), :attr:`summary`, :attr:`rationale` (one paragraph,
    rendered by ``repro lint --rules`` and the docs), and :attr:`scope`
    (``"hot"``, ``"obs"`` or ``"all"``), and implement :meth:`check`.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""
    scope: str = "hot"

    def applies_to(self, source: SourceFile) -> bool:
        if self.scope == "all":
            return True
        if self.scope == "obs":
            return source.is_obs
        return source.is_hot

    def check(self, source: SourceFile) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, source: SourceFile, node: ast.AST,
                  message: str) -> Violation:
        return Violation(rule=self.id, path=source.path,
                         line=getattr(node, "lineno", 0),
                         col=getattr(node, "col_offset", 0) + 1,
                         message=message)


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    if rule.scope not in ("hot", "obs", "all"):
        raise ValueError(f"{rule.id}: unknown scope {rule.scope!r}")
    _REGISTRY[rule.id] = rule
    return cls


def registered_rules() -> Dict[str, Rule]:
    """The rule registry (id -> rule), importing the built-in rule set."""
    # Deferred import: discipline.py itself imports this module.
    from repro.lint import discipline  # noqa: F401
    return dict(_REGISTRY)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    suppressed_count: int = 0
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def suppressions_in(self, packages: Sequence[str]) -> List[Suppression]:
        """Suppression markers inside the given ``repro`` sub-packages —
        the acceptance bar demands none in ``sim``/``cpu``/``core``."""
        return [s for s in self.suppressions
                if package_of(s.path) in packages]


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                yield path
            continue
        collected: List[str] = []
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in ("__pycache__", ".git"))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    collected.append(os.path.join(dirpath, name))
        for file_path in collected:
            if file_path not in seen:
                seen.add(file_path)
                yield file_path


def run_lint(paths: Sequence[str],
             rules: Optional[Sequence[str]] = None,
             only_files: Optional[Set[str]] = None) -> LintReport:
    """Lint every Python file under ``paths``.

    Args:
        paths: files or directory roots.
        rules: rule ids to run (default: all registered).
        only_files: when given (``--changed`` mode), restrict checking
            to files whose absolute path is in this set; other files are
            still counted as skipped, not scanned.
    """
    registry = registered_rules()
    if rules is not None:
        unknown = [r for r in rules if r not in registry]
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}; "
                             f"known: {', '.join(sorted(registry))}")
        active = [registry[r] for r in rules]
    else:
        active = [registry[r] for r in sorted(registry)]

    report = LintReport(rules_run=[rule.id for rule in active])
    for file_path in iter_python_files(paths):
        if only_files is not None \
                and os.path.abspath(file_path) not in only_files:
            continue
        try:
            with open(file_path, "r", encoding="utf-8") as fh:
                text = fh.read()
            source = SourceFile(file_path, text)
        except (OSError, SyntaxError, ValueError) as exc:
            report.parse_errors.append(f"{file_path}: {exc}")
            continue
        report.files_scanned += 1
        report.suppressions.extend(source.suppressions)
        for rule in active:
            if not rule.applies_to(source):
                continue
            for violation in rule.check(source):
                if source.suppressed(violation.rule, violation.line):
                    report.suppressed_count += 1
                else:
                    report.violations.append(violation)
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report
