"""Herd-style axiomatic relation analysis over litmus programs.

This is the lint package's second rule family: a *static* memory-model
classifier that computes the po/rf/co/fr relations of every candidate
execution of a :class:`~repro.litmus.program.Program` and classifies
each reachable outcome as allowed or forbidden per model by cycle
detection — then cross-checks itself against the repo's existing
enumerator (:mod:`repro.litmus.axiomatic`).

The two implementations are deliberately independent so they can serve
as oracles for each other:

* ``axiomatic.py`` materialises the **transitive closure** of ``co``
  (and full ``fr``) and tests acyclicity with an iterative DFS
  three-colouring.
* this module keeps only **immediate-successor** ``co`` edges (and the
  corresponding first-successor ``fr`` edges) — reachability, and hence
  acyclicity, is unchanged because every transitive edge is a chain of
  immediate ones — and tests acyclicity with a **Kahn indegree peel**,
  extracting a concrete witness cycle from the unpeeled residue.

Each model's ppo/grf predicates are resolved from the registry
(:mod:`repro.models`) — the same definitions ``axiomatic.py``
evaluates, covering SC, 370, x86 and WMM (the paper's Figure 2
forwarding distinction is the 370-vs-x86 ``grf`` difference).  Locked
read-modify-writes contribute a read event ``(tid, idx)`` plus a write
event ``(tid, idx, 1)`` tied by the atomicity axiom; a failed cas
performs no write (its write event is inactive).

An outcome that x86 allows and 370 forbids always owes its 370 cycle to
an ``rfi`` (store-to-load forwarding) edge — exactly the store-atomicity
violation the paper's SLF gate exists to police.  :func:`find_races`
reports those outcomes with their witness cycles and classifies the
program's communication shape (forwarding / WRC / IRIW).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.litmus.axiomatic import M370, SC, X86, enumerate_axiomatic
from repro.litmus.program import (Cas, Ld, Outcome, Program, Rmw, St)
from repro.models import get_model, model_names, po_access_pairs
from repro.models.base import PoPair

MODELS = model_names(axiomatic_only=True)

#: ``(tid, idx)`` for a load/store or the read half of a locked op;
#: ``(tid, idx, 1)`` for the write half of a locked op; tid == -1 for
#: the per-address initial store (idx = ordinal of the address in
#: ``program.addresses``).
Event = Tuple[int, ...]


@dataclass(frozen=True)
class Edge:
    """One labelled happens-before edge of a candidate execution."""

    src: Event
    dst: Event
    kind: str  # po|ppo|po-loc|fence | rfi|rfe|rf-init | co|fr | atom

    def sort_key(self) -> Tuple[Event, Event, str]:
        return (self.src, self.dst, self.kind)


@dataclass(frozen=True)
class CycleWitness:
    """A happens-before cycle proving an outcome forbidden."""

    axiom: str               # "sc-per-location" | "atomicity" | "ghb"
    edges: Tuple[Edge, ...]

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(edge.kind for edge in self.edges)

    def has_kind(self, kind: str) -> bool:
        return any(edge.kind == kind for edge in self.edges)

    def communication_edges(self) -> Tuple[Edge, ...]:
        """The rf/fr/co (and RMW-atomicity) edges of the cycle — the
        inter-thread communication chain, stripped of intra-thread
        program order."""
        return tuple(e for e in self.edges
                     if e.kind in ("rfi", "rfe", "rf-init", "co", "fr",
                                   "atom"))


def event_name(program: Program, event: Event) -> str:
    tid = event[0]
    if tid < 0:
        return f"init[{program.addresses[event[1]]}]"
    op = program.threads[tid][event[1]]
    if isinstance(op, (Rmw, Cas)):
        return f"T{tid}:{op} [{'W' if len(event) == 3 else 'R'}]"
    return f"T{tid}:{op}"


def render_cycle(program: Program, witness: CycleWitness) -> List[str]:
    return [f"{event_name(program, e.src)}  --{e.kind}-->  "
            f"{event_name(program, e.dst)}" for e in witness.edges]


class RelationAnalysis:
    """Relation scaffolding for one program: events, accesses, po.

    Everything here is independent of the rf/co choice; a
    :class:`Candidate` adds one concrete (rf, co) pick on top.
    """

    __slots__ = ("program", "loads", "stores", "locked", "init_events",
                 "addr_of", "value_of", "po_pairs")

    def __init__(self, program: Program) -> None:
        self.program = program
        #: (event, op) — loads plus the read half of every locked op.
        self.loads: List[Tuple[Event, object]] = []
        #: (event, op) — stores plus the write half of every locked op.
        self.stores: List[Tuple[Event, object]] = []
        #: (read event, write event, op) per locked instruction.
        self.locked: List[Tuple[Event, Event, object]] = []
        self.init_events: Dict[str, Event] = {}
        self.addr_of: Dict[Event, str] = {}
        self.value_of: Dict[Event, int] = {}
        for ordinal, addr in enumerate(program.addresses):
            init = (-1, ordinal)
            self.init_events[addr] = init
            self.addr_of[init] = addr
            self.value_of[init] = program.initial_value(addr)
        for tid, thread in enumerate(program.threads):
            for idx, op in enumerate(thread):
                event = (tid, idx)
                if isinstance(op, Ld):
                    self.loads.append((event, op))
                    self.addr_of[event] = op.addr
                elif isinstance(op, St):
                    self.stores.append((event, op))
                    self.addr_of[event] = op.addr
                    self.value_of[event] = op.value
                elif isinstance(op, (Rmw, Cas)):
                    write = (tid, idx, 1)
                    self.loads.append((event, op))
                    self.stores.append((write, op))
                    self.locked.append((event, write, op))
                    self.addr_of[event] = op.addr
                    self.addr_of[write] = op.addr
                    self.value_of[write] = op.value
        self.po_pairs: List[PoPair] = list(po_access_pairs(program))

    def candidates(self) -> Iterator["Candidate"]:
        """Every candidate execution: an rf source per read crossed
        with a coherence order per address (over the writes that are
        *active* under the rf choice — a failed cas writes nothing)."""
        rf_domains: List[List[Event]] = []
        for _, op in self.loads:
            domain = [self.init_events[op.addr]]
            domain.extend(event for event, store in self.stores
                          if store.addr == op.addr)
            rf_domains.append(domain)

        def co_orders(addr_index: int, active: frozenset,
                      chosen: Dict[str, Tuple[Event, ...]]
                      ) -> Iterator[Dict[str, Tuple[Event, ...]]]:
            if addr_index == len(self.program.addresses):
                yield dict(chosen)
                return
            addr = self.program.addresses[addr_index]
            events = [event for event, store in self.stores
                      if store.addr == addr and event in active]
            for order in _permutations(events):
                chosen[addr] = order
                yield from co_orders(addr_index + 1, active, chosen)
            chosen.pop(addr, None)

        def rf_assignments(load_index: int, chosen: Dict[Event, Event]
                           ) -> Iterator[Dict[Event, Event]]:
            if load_index == len(self.loads):
                yield dict(chosen)
                return
            load_event, _ = self.loads[load_index]
            for source in rf_domains[load_index]:
                chosen[load_event] = source
                yield from rf_assignments(load_index + 1, chosen)
            chosen.pop(load_event, None)

        for rf in rf_assignments(0, {}):
            active = self._active_writes(rf)
            if any(source[0] >= 0 and source not in active
                   for source in rf.values()):
                continue   # a read sources a write that never happens
            for co in co_orders(0, active, {}):
                yield Candidate(self, rf, co, active)

    def _active_writes(self, rf: Dict[Event, Event]) -> frozenset:
        """The writes that happen under ``rf``: everything except the
        write half of a cas whose read saw a value != expect."""
        active = {event for event, _ in self.stores}
        for read, write, op in self.locked:
            if isinstance(op, Cas) and \
                    self.value_of[rf[read]] != op.expect:
                active.discard(write)
        return frozenset(active)


def _permutations(items: List[Event]) -> Iterator[Tuple[Event, ...]]:
    if not items:
        yield ()
        return
    for i in range(len(items)):
        rest = items[:i] + items[i + 1:]
        for tail in _permutations(rest):
            yield (items[i],) + tail


class Candidate:
    """One candidate execution: an (rf, co) choice over the analysis."""

    __slots__ = ("analysis", "rf", "co", "active")

    def __init__(self, analysis: RelationAnalysis,
                 rf: Dict[Event, Event],
                 co: Dict[str, Tuple[Event, ...]],
                 active: Optional[frozenset] = None) -> None:
        self.analysis = analysis
        self.rf = rf
        self.co = co
        self.active = analysis._active_writes(rf) \
            if active is None else active

    # -- relations -----------------------------------------------------
    def rf_edges(self) -> List[Edge]:
        edges = []
        for load, source in self.rf.items():
            if source[0] < 0:
                kind = "rf-init"
            elif source[0] == load[0]:
                kind = "rfi"
            else:
                kind = "rfe"
            edges.append(Edge(source, load, kind))
        return edges

    def co_edges(self) -> List[Edge]:
        """Immediate-successor coherence edges (init first)."""
        edges = []
        for addr in self.analysis.program.addresses:
            chain = (self.analysis.init_events[addr],) + self.co[addr]
            for a, b in zip(chain, chain[1:]):
                edges.append(Edge(a, b, "co"))
        return edges

    def fr_edges(self) -> List[Edge]:
        """First-successor from-read edges: each load precedes the
        store immediately co-after its source (transitively, via co,
        every later store — same closure as full fr)."""
        successor: Dict[Event, Event] = {}
        for addr in self.analysis.program.addresses:
            chain = (self.analysis.init_events[addr],) + self.co[addr]
            for a, b in zip(chain, chain[1:]):
                successor[a] = b
        edges = []
        for load, source in self.rf.items():
            nxt = successor.get(source)
            if nxt is not None:
                edges.append(Edge(load, nxt, "fr"))
        return edges

    def _pair_exists(self, pair: PoPair) -> bool:
        """A pair is an edge source only when both events happen (the
        write half of a failed cas does not)."""
        return (not pair.a_store or pair.a in self.active) and \
               (not pair.b_store or pair.b in self.active)

    def uniproc_edges(self) -> List[Edge]:
        edges = self.rf_edges() + self.co_edges() + self.fr_edges()
        for pair in self.analysis.po_pairs:
            if pair.same_addr and self._pair_exists(pair):
                edges.append(Edge(pair.a, pair.b, "po-loc"))
        return edges

    def atomicity_edges(self) -> List[Edge]:
        """Violated-atomicity witness triangles: for a locked op whose
        write is not the immediate co-successor of its read's source,
        the cycle  R --fr--> X --co--> W --atom--> R  (empty list when
        every locked op is atomic)."""
        successor: Dict[Event, Event] = {}
        for addr in self.analysis.program.addresses:
            chain = (self.analysis.init_events[addr],) + self.co[addr]
            for a, b in zip(chain, chain[1:]):
                successor[a] = b
        edges: List[Edge] = []
        for read, write, _op in self.analysis.locked:
            if write not in self.active:
                continue
            intervening = successor.get(self.rf[read])
            if intervening != write:
                edges.extend([Edge(read, intervening, "fr"),
                              Edge(intervening, write, "co"),
                              Edge(write, read, "atom")])
                break
        return edges

    def ghb_edges(self, model: str) -> List[Edge]:
        axiomatic = get_model(model).axiomatic
        edges = self.co_edges() + self.fr_edges()
        for edge in self.rf_edges():
            if axiomatic.grf(edge.kind):
                edges.append(edge)
        for pair in self.analysis.po_pairs:
            if not self._pair_exists(pair):
                continue
            if not axiomatic.ppo(pair):
                continue
            if pair.fence and not axiomatic.ppo(pair.without_fence()):
                kind = "fence"    # kept only because of the barrier
            else:
                kind = "po" if model == SC else "ppo"
            edges.append(Edge(pair.a, pair.b, kind))
        return edges

    def outcome(self) -> Outcome:
        analysis = self.analysis
        regs = []
        for load_event, op in analysis.loads:
            source = self.rf[load_event]
            regs.append(((load_event[0], op.reg),
                         analysis.value_of[source]))
        mem = []
        for addr in analysis.program.addresses:
            order = self.co[addr]
            last = order[-1] if order else analysis.init_events[addr]
            mem.append((addr, analysis.value_of[last]))
        return Outcome(registers=tuple(sorted(regs)),
                       memory=tuple(sorted(mem)))

    def universal_witness(self) -> Optional[CycleWitness]:
        """A model-independent violation: an sc-per-location cycle or
        a broken RMW atomicity triangle (None when neither)."""
        cycle = find_cycle(self.uniproc_edges())
        if cycle is not None:
            return CycleWitness("sc-per-location", tuple(cycle))
        triangle = self.atomicity_edges()
        if triangle:
            return CycleWitness("atomicity", tuple(triangle))
        return None

    def judge(self, model: str) -> Optional[CycleWitness]:
        """None when the candidate satisfies the model's axioms, else
        the witness cycle of the first violated axiom."""
        witness = self.universal_witness()
        if witness is not None:
            return witness
        cycle = find_cycle(self.ghb_edges(model))
        if cycle is not None:
            return CycleWitness("ghb", tuple(cycle))
        return None


def find_cycle(edges: Sequence[Edge]) -> Optional[List[Edge]]:
    """Kahn indegree peel; returns a concrete cycle from the residual
    graph, or None when the edge set is acyclic.

    Deterministic: successors are visited in sorted order, so the same
    edge set always yields the same witness cycle.
    """
    succ: Dict[Event, List[Edge]] = {}
    indegree: Dict[Event, int] = {}
    for edge in sorted(edges, key=Edge.sort_key):
        succ.setdefault(edge.src, []).append(edge)
        indegree.setdefault(edge.src, 0)
        indegree[edge.dst] = indegree.get(edge.dst, 0) + 1

    frontier = sorted(n for n, d in indegree.items() if d == 0)
    remaining = dict(indegree)
    while frontier:
        node = frontier.pop()
        remaining.pop(node)
        for edge in succ.get(node, ()):
            remaining[edge.dst] -= 1
            if remaining[edge.dst] == 0:
                frontier.append(edge.dst)
    if not remaining:
        return None

    # The residue holds every cycle plus nodes upstream/downstream of
    # one; peel sinks (no successor inside the residue) the same way to
    # leave only nodes that lie on cycles, then walk until a repeat.
    residue = set(remaining)
    while True:
        sinks = [n for n in residue
                 if not any(e.dst in residue for e in succ.get(n, ()))]
        if not sinks:
            break
        residue.difference_update(sinks)
    start = min(residue)
    path: List[Edge] = []
    seen_at: Dict[Event, int] = {start: 0}
    node = start
    while True:
        edge = next(e for e in succ[node] if e.dst in residue)
        path.append(edge)
        node = edge.dst
        if node in seen_at:
            return path[seen_at[node]:]
        seen_at[node] = len(path)


@dataclass
class Classification:
    """The static verdict for one program under one model."""

    program: Program
    model: str
    allowed: FrozenSet[Outcome] = frozenset()
    forbidden: FrozenSet[Outcome] = frozenset()
    witnesses: Dict[Outcome, CycleWitness] = field(default_factory=dict)

    def witness(self, outcome: Outcome) -> Optional[CycleWitness]:
        return self.witnesses.get(outcome)


def classify(program: Program, model: str) -> Classification:
    """Partition the program's reachable outcomes into allowed and
    forbidden under ``model``, with a witness cycle per forbidden
    outcome (the shortest found across its candidates)."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; expected one of "
                         f"{', '.join(MODELS)}")
    analysis = RelationAnalysis(program)
    allowed: set = set()
    cycles: Dict[Outcome, CycleWitness] = {}
    for candidate in analysis.candidates():
        outcome = candidate.outcome()
        witness = candidate.judge(model)
        if witness is None:
            allowed.add(outcome)
            cycles.pop(outcome, None)
        elif outcome not in allowed:
            best = cycles.get(outcome)
            if best is None or len(witness.edges) < len(best.edges):
                cycles[outcome] = witness
    forbidden = frozenset(o for o in cycles if o not in allowed)
    return Classification(program=program, model=model,
                          allowed=frozenset(allowed), forbidden=forbidden,
                          witnesses={o: cycles[o] for o in forbidden})


# ---------------------------------------------------------------------------
# Non-multi-copy-atomic race analysis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Race:
    """An outcome x86 admits that the store-atomic 370 model forbids."""

    outcome: Outcome
    witness: CycleWitness          # the 370 cycle
    shape: str                     # "forwarding" | "wrc" | "iriw" | "other"


@dataclass
class RaceReport:
    program: Program
    races: List[Race] = field(default_factory=list)
    program_shapes: FrozenSet[str] = frozenset()

    @property
    def multi_copy_atomic(self) -> bool:
        """True when 370 and x86 admit identical outcome sets — no
        observable store-atomicity violation in this program."""
        return not self.races


def program_shapes(program: Program) -> FrozenSet[str]:
    """Structural communication shapes that can expose non-MCA
    behaviour: ``iriw`` (two writers, two readers disagreeing on the
    write order) and ``wrc`` (write → read-then-write → reader chain)."""
    shapes = set()
    num_threads = len(program.threads)
    accesses: List[List[Tuple[str, str]]] = []   # per thread: (kind, addr)
    for thread in program.threads:
        accesses.append([("st" if isinstance(op, St) else "ld", op.addr)
                         for op in thread if isinstance(op, (Ld, St))])

    def writes(tid: int) -> List[str]:
        return [a for k, a in accesses[tid] if k == "st"]

    def read_sequence(tid: int) -> List[str]:
        return [a for k, a in accesses[tid] if k == "ld"]

    # IRIW: writers w1 (addr a), w2 (addr b), readers r1 seeing a then
    # b, r2 seeing b then a.
    for w1 in range(num_threads):
        for w2 in range(num_threads):
            if w1 == w2:
                continue
            for a in set(writes(w1)):
                for b in set(writes(w2)):
                    if a == b:
                        continue
                    readers = [tid for tid in range(num_threads)
                               if tid not in (w1, w2)]
                    ab = [t for t in readers
                          if _reads_in_order(read_sequence(t), a, b)]
                    ba = [t for t in readers
                          if _reads_in_order(read_sequence(t), b, a)]
                    if any(x != y for x in ab for y in ba):
                        shapes.add("iriw")
    # WRC: w writes a; t reads a then writes b; r reads b then a.
    for w in range(num_threads):
        for a in set(writes(w)):
            for t in range(num_threads):
                if t == w:
                    continue
                seq = accesses[t]
                for i, (k1, a1) in enumerate(seq):
                    if k1 != "ld" or a1 != a:
                        continue
                    for k2, b in seq[i + 1:]:
                        if k2 != "st" or b == a:
                            continue
                        for r in range(num_threads):
                            if r in (w, t):
                                continue
                            if _reads_in_order(read_sequence(r), b, a):
                                shapes.add("wrc")
    return frozenset(shapes)


def _reads_in_order(sequence: List[str], first: str, second: str) -> bool:
    for i, addr in enumerate(sequence):
        if addr == first:
            return second in sequence[i + 1:]
    return False


def find_races(program: Program) -> RaceReport:
    """Outcomes x86 allows but 370 forbids, each with the 370 cycle.

    The cycle of every such outcome threads through at least one
    ``rfi`` edge — the forwarded store observed early — because rfi
    membership in ghb is the only difference between the two models.
    """
    x86 = classify(program, X86)
    m370 = classify(program, M370)
    shapes = program_shapes(program)
    report = RaceReport(program=program, program_shapes=shapes)
    for outcome in sorted(x86.allowed - m370.allowed, key=str):
        witness = m370.witnesses[outcome]
        if witness.has_kind("rfi"):
            shape = "forwarding"
        elif "iriw" in shapes:
            shape = "iriw"
        elif "wrc" in shapes:
            shape = "wrc"
        else:
            shape = "other"
        report.races.append(
            Race(outcome=outcome, witness=witness, shape=shape))
    return report


# ---------------------------------------------------------------------------
# Cross-checks against the enumerator in litmus/axiomatic.py
# ---------------------------------------------------------------------------

@dataclass
class CrossCheckResult:
    programs_checked: int = 0
    programs_skipped: int = 0       # retained for report compatibility
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.programs_checked > 0


def cross_check_program(program: Program,
                        models: Sequence[str] = MODELS) -> List[str]:
    """Compare this module's allowed sets against
    :func:`repro.litmus.axiomatic.enumerate_axiomatic` per model;
    returns human-readable mismatch descriptions (empty = agreement)."""
    mismatches: List[str] = []
    for model in models:
        mine = classify(program, model).allowed
        oracle = enumerate_axiomatic(program, model)
        if mine == oracle:
            continue
        extra = sorted(mine - oracle, key=str)
        missing = sorted(oracle - mine, key=str)
        detail = []
        if extra:
            detail.append("relation-analysis-only: "
                          + "; ".join(map(str, extra)))
        if missing:
            detail.append("enumerator-only: "
                          + "; ".join(map(str, missing)))
        mismatches.append(
            f"{program.name} under {model}: {' / '.join(detail)}")
    return mismatches


def cross_check_battery(models: Sequence[str] = MODELS) -> CrossCheckResult:
    """Cross-check the full built-in battery — locked-RMW cases
    included, both sides model them now."""
    from repro.litmus.battery import EXTRA_CASES
    from repro.litmus.tests import ALL_CASES
    result = CrossCheckResult()
    for case in list(ALL_CASES) + list(EXTRA_CASES):
        result.mismatches.extend(cross_check_program(case.program, models))
        result.programs_checked += 1
    return result


def cross_check_random(count: int, seed: int,
                       models: Sequence[str] = MODELS,
                       threads: int = 2, max_ops: int = 3,
                       allow_fences: bool = True) -> CrossCheckResult:
    """Cross-check ``count`` seeded random programs from
    :func:`repro.litmus.checker.random_program`."""
    from repro.litmus.checker import random_program
    rng = random.Random(seed)
    result = CrossCheckResult()
    for trial in range(count):
        program = random_program(rng, name=f"random-{seed}-{trial}",
                                 threads=threads, max_ops=max_ops,
                                 allow_fences=allow_fences)
        result.mismatches.extend(cross_check_program(program, models))
        result.programs_checked += 1
    return result
