"""Reporters for lint runs: human text and machine JSON.

The JSON shape is stable (CI uploads it as an artifact):

.. code-block:: json

    {
      "ok": true,
      "files_scanned": 63,
      "rules_run": ["det-rng", "..."],
      "violations": [{"rule": "...", "path": "...", "line": 1,
                      "col": 1, "message": "..."}],
      "suppressed": 0,
      "suppressions": [{"path": "...", "line": 3,
                        "rules": ["hot-slots"], "file_level": false}],
      "parse_errors": []
    }
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import LintReport


def render_json(report: LintReport) -> str:
    payload: Dict[str, object] = {
        "ok": report.ok,
        "files_scanned": report.files_scanned,
        "rules_run": list(report.rules_run),
        "violations": [
            {"rule": v.rule, "path": v.path, "line": v.line,
             "col": v.col, "message": v.message}
            for v in report.violations
        ],
        "suppressed": report.suppressed_count,
        "suppressions": [
            {"path": s.path, "line": s.line, "rules": sorted(s.rules),
             "file_level": s.file_level}
            for s in sorted(report.suppressions,
                            key=lambda s: (s.path, s.line))
        ],
        "parse_errors": list(report.parse_errors),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_human(report: LintReport) -> str:
    lines: List[str] = []
    for violation in report.violations:
        lines.append(f"{violation.location()}: {violation.rule}: "
                     f"{violation.message}")
    for error in report.parse_errors:
        lines.append(f"error: {error}")
    noun = "violation" if len(report.violations) == 1 else "violations"
    summary = (f"{len(report.violations)} {noun} in "
               f"{report.files_scanned} files")
    if report.suppressed_count:
        summary += f" ({report.suppressed_count} suppressed)"
    if report.parse_errors:
        summary += f", {len(report.parse_errors)} files failed to parse"
    lines.append(summary)
    return "\n".join(lines)
