"""``repro.lint``: static analysis for the repo's two core guarantees.

The simulator's value rests on disciplines that were previously enforced
only dynamically:

* **Determinism** — runs are byte-for-byte reproducible, so the hot
  modules (``sim``, ``cpu``, ``core``, ``coherence``, ``noc``,
  ``memory``) must never read wall clocks, unseeded RNGs, or OS entropy,
  and must never let ``set`` iteration order leak into stats or keys.
* **Zero overhead when disabled** — observability and fault hooks follow
  the resolve-once/guarded-fire pattern (``docs/OBSERVABILITY.md``), and
  hot-loop classes declare ``__slots__``.

This package proves those disciplines at review time with an AST-based
rule engine (:mod:`repro.lint.engine`, rules in
:mod:`repro.lint.discipline`), and provides a second, independent
memory-model oracle: a herd-style axiomatic relation analysis over
litmus programs (:mod:`repro.lint.memory_model`) cross-checked against
:mod:`repro.litmus.axiomatic`.

Entry points: ``repro lint`` (CLI), :func:`run_lint`, and
:func:`repro.lint.memory_model.classify`.
"""

from repro.lint.engine import (LintReport, Rule, SourceFile, Violation,
                               registered_rules, run_lint)
from repro.lint import discipline as _discipline  # noqa: F401  (registers rules)
from repro.lint.report import render_human, render_json

__all__ = [
    "LintReport",
    "Rule",
    "SourceFile",
    "Violation",
    "registered_rules",
    "render_human",
    "render_json",
    "run_lint",
]
