"""The built-in discipline rules.

Two families, mirroring the repo's two standing guarantees:

* **Determinism** (``det-*``, ``iter-set-order``): the simulator's hot
  loop must be a pure function of its inputs and seeds.  Wall clocks,
  OS entropy, and unseeded RNGs are banned outright; ``set`` iteration
  order (hash-dependent in principle) must never reach an
  order-sensitive consumer unsorted.
* **Zero overhead when disabled** (``obs-*``, ``hot-slots``): probe
  fire sites follow the resolve-once/guarded-fire pattern from
  ``docs/OBSERVABILITY.md`` so a disabled probe costs one attribute
  load and an ``is not None`` test, and hot-loop classes declare
  ``__slots__`` so attribute access skips the instance ``__dict__``.
  The ``obs-*`` rules are ``obs``-scoped: they also cover the
  observer-side packages (``obs``, ``leakage``) where watchers resolve
  and subscribe, and ``obs-probe-registered`` checks every literal
  probe name against the :data:`~repro.obs.bus.PROBE_SIGNATURES`
  registry so a typo'd subscription fails lint, not silently observes
  nothing.

``mut-default`` is repo-wide hygiene: a mutable default argument is
shared across calls and is a classic source of cross-run state leaks.

Every rule here is an AST pattern, not a type analysis — deliberately
simple, deterministic, and explainable.  Each carries a ``rationale``
paragraph rendered by ``repro lint --rules`` and docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, List, Optional, Set

from repro.lint.engine import (LintVisitor, Rule, SourceFile, Violation,
                               register)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    return dotted_name(node.func)


class _CallScanner(LintVisitor):
    """Collects every Call node with its dotted func name."""

    def __init__(self) -> None:
        super().__init__()
        self.calls: List[ast.Call] = []

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)


@register
class WallClockRule(Rule):
    id = "det-wallclock"
    summary = "no wall-clock reads in hot simulation modules"
    rationale = (
        "Simulated time is the Engine's event clock; reading the host's "
        "wall clock (time.time, perf_counter, datetime.now, ...) in "
        "sim/cpu/core/coherence/noc/memory makes behaviour depend on "
        "machine load and breaks byte-for-byte reproducibility. "
        "Timing measurement belongs in the bench harness, outside the "
        "hot loop.")
    scope = "hot"

    _FORBIDDEN = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.clock_gettime", "time.clock",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today",
    }

    def check(self, source: SourceFile) -> Iterator[Violation]:
        scanner = _CallScanner()
        scanner.walk(source.tree)
        for call in scanner.calls:
            name = _call_name(call)
            if name in self._FORBIDDEN:
                yield self.violation(
                    source, call,
                    f"wall-clock call {name}() in hot module; simulated "
                    f"time must come from the Engine clock")


@register
class RngRule(Rule):
    id = "det-rng"
    summary = "no unseeded RNG or OS entropy in hot simulation modules"
    rationale = (
        "Randomness in the hot loop must flow from an explicitly seeded "
        "generator threaded through the config (as repro.resilience "
        "does), never from the module-level random.* functions (process-"
        "global state), os.urandom/secrets (OS entropy), uuid.uuid4, or "
        "an unseeded random.Random().  Otherwise two runs with the same "
        "seed diverge and the determinism contract is void.")
    scope = "hot"

    _MODULE_FNS = {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "triangular", "getrandbits", "randbytes", "seed",
        "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
    }

    def check(self, source: SourceFile) -> Iterator[Violation]:
        scanner = _CallScanner()
        scanner.walk(source.tree)
        for call in scanner.calls:
            name = _call_name(call)
            if name is None:
                continue
            parts = name.split(".")
            if name == "os.urandom":
                yield self.violation(
                    source, call, "os.urandom() draws OS entropy; "
                    "derive randomness from the seeded config RNG")
            elif parts[0] == "secrets":
                yield self.violation(
                    source, call, f"{name}() draws OS entropy; "
                    "derive randomness from the seeded config RNG")
            elif name in ("uuid.uuid1", "uuid.uuid4"):
                yield self.violation(
                    source, call, f"{name}() is non-deterministic; "
                    "use a counter or the seeded config RNG")
            elif parts[0] == "random" and len(parts) == 2 \
                    and parts[1] in self._MODULE_FNS:
                yield self.violation(
                    source, call,
                    f"{name}() uses the process-global RNG; construct a "
                    f"seeded random.Random(seed) and thread it through")
            elif name in ("random.Random", "random.SystemRandom") \
                    and not call.args and not call.keywords:
                yield self.violation(
                    source, call,
                    f"{name}() without a seed is initialised from OS "
                    f"entropy; pass an explicit seed")
            elif len(parts) >= 2 and "random" in parts[:-1] \
                    and parts[0] in ("np", "numpy"):
                yield self.violation(
                    source, call,
                    f"{name}() uses numpy's global RNG; use a seeded "
                    f"Generator or the config RNG")


class _ResolveScanner(LintVisitor):
    def __init__(self) -> None:
        super().__init__()
        self.hits: List[ast.Call] = []

    _SETUP_FUNCS = ("__init__", "__post_init__", "attach")

    def visit_Call(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "resolve"):
            return
        for fn in self.function_stack:
            name = getattr(fn, "name", None)
            if name in self._SETUP_FUNCS:
                return
            # A helper whose own name starts with ``resolve`` (e.g.
            # ``resolve_squash_probes``) is attach-time machinery its
            # callers invoke from their constructors.
            if name is not None and name.startswith("resolve"):
                return
        self.hits.append(node)


@register
class ResolveOnceRule(Rule):
    id = "obs-resolve-once"
    summary = "probe-bus resolve() only in __init__/__post_init__/attach"
    rationale = (
        "docs/OBSERVABILITY.md's zero-overhead contract: a component "
        "resolves each probe name once at construction (or in attach()) "
        "and caches the callback (or None) on self.  A resolve() inside "
        "a per-event method pays a dict lookup on every event even when "
        "observability is off, defeating the no-op guarantee.  Helpers "
        "named resolve_* (attach-time machinery like "
        "resolve_squash_probes) are exempt.")
    scope = "obs"

    def check(self, source: SourceFile) -> Iterator[Violation]:
        scanner = _ResolveScanner()
        scanner.walk(source.tree)
        for call in scanner.hits:
            name = dotted_name(call.func) or "<expr>.resolve"
            yield self.violation(
                source, call,
                f"{name}() outside __init__/__post_init__/attach; "
                f"resolve probes once at construction and cache on self")


def _guard_covers(test: ast.AST, probe: str) -> bool:
    """Does an ``if`` test establish that ``probe`` (a dotted
    ``self._p_x`` string) is not None?  Accepts ``self._p_x is not
    None``, plain truthiness ``self._p_x``, and either of those inside
    an ``and`` chain."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_guard_covers(v, probe) for v in test.values)
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.ops[0], ast.IsNot) \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        return dotted_name(test.left) == probe
    return dotted_name(test) == probe


class _FireScanner(LintVisitor):
    def __init__(self) -> None:
        super().__init__()
        self.unguarded: List[ast.Call] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr.startswith("_p_")
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            return
        probe = f"self.{func.attr}"
        for ancestor in reversed(self.ancestors):
            if isinstance(ancestor, ast.If) \
                    and _guard_covers(ancestor.test, probe):
                return
            if isinstance(ancestor, ast.IfExp) \
                    and _guard_covers(ancestor.test, probe):
                return
            if isinstance(ancestor, ast.BoolOp) \
                    and isinstance(ancestor.op, ast.And) \
                    and any(_guard_covers(v, probe)
                            for v in ancestor.values):
                return
        self.unguarded.append(node)


@register
class GuardedFireRule(Rule):
    id = "obs-guarded-fire"
    summary = "probe fires must be guarded by `if self._p_x is not None`"
    rationale = (
        "The second half of the zero-overhead contract: every fire site "
        "`self._p_x(...)` sits under `if self._p_x is not None:` so that "
        "with the NULL_BUS (probes resolve to None) the cost is one "
        "attribute load and a pointer compare — no call, no argument "
        "tuple.  An unguarded fire crashes on NULL_BUS or, worse, pays "
        "call overhead on every event.")
    scope = "obs"

    def check(self, source: SourceFile) -> Iterator[Violation]:
        scanner = _FireScanner()
        scanner.walk(source.tree)
        for call in scanner.unguarded:
            name = dotted_name(call.func)
            yield self.violation(
                source, call,
                f"unguarded probe fire {name}(...); wrap in "
                f"`if {name} is not None:`")


class _ProbeNameScanner(LintVisitor):
    """Collects literal probe-name arguments to resolve()/subscribe()."""

    def __init__(self) -> None:
        super().__init__()
        self.hits: List[ast.Constant] = []

    def visit_Call(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr in ("resolve", "subscribe")
                and node.args):
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            self.hits.append(first)


@register
class ProbeRegisteredRule(Rule):
    id = "obs-probe-registered"
    summary = "literal probe names must exist in PROBE_SIGNATURES"
    rationale = (
        "The bus raises on an unknown probe name at wiring time, but "
        "only on the code path actually taken — a watcher wired behind "
        "a flag (like the leakage instrument) can carry a typo'd "
        "subscription for months and silently observe nothing when "
        "finally enabled.  This rule checks every string-literal first "
        "argument to a resolve()/subscribe() call against the "
        "repro.obs.bus.PROBE_SIGNATURES registry, including 'prefix.*' "
        "wildcards (which must match at least one probe).  Dynamic "
        "names (f-strings, variables) are left to the runtime check.")
    scope = "obs"

    def check(self, source: SourceFile) -> Iterator[Violation]:
        from repro.obs.bus import PROBE_SIGNATURES
        scanner = _ProbeNameScanner()
        scanner.walk(source.tree)
        for const in scanner.hits:
            name = const.value
            if name == "*" or name in PROBE_SIGNATURES:
                continue
            if name.endswith(".*"):
                prefix = name[:-1]  # keep the dot, as ProbeBus._match does
                if any(p.startswith(prefix) for p in PROBE_SIGNATURES):
                    continue
                yield self.violation(
                    source, const,
                    f"probe wildcard {name!r} matches nothing in "
                    f"PROBE_SIGNATURES")
                continue
            yield self.violation(
                source, const,
                f"unknown probe name {name!r}; register it in "
                f"repro.obs.bus.PROBE_SIGNATURES or fix the typo")


def _is_dataclass_slots(decorator: ast.AST) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    name = dotted_name(decorator.func)
    if name not in ("dataclass", "dataclasses.dataclass"):
        return False
    for kw in decorator.keywords:
        if kw.arg == "slots" and isinstance(kw.value, ast.Constant) \
                and kw.value.value is True:
            return True
    return False


_SLOTS_EXEMPT_BASES = {"Exception", "BaseException", "Enum", "IntEnum",
                       "Flag", "IntFlag", "NamedTuple", "Protocol",
                       "TypedDict", "ABC"}


@register
class HotSlotsRule(Rule):
    id = "hot-slots"
    summary = "hot-loop classes must declare __slots__"
    rationale = (
        "Classes instantiated or touched every simulated cycle (ROB "
        "entries, store-buffer slots, policies, controllers) live in "
        "the interpreter's hottest attribute-lookup paths.  __slots__ "
        "(or @dataclass(slots=True)) removes the per-instance __dict__: "
        "less memory, faster attribute access, and AttributeError "
        "instead of silent typo'd attributes — which is also how the "
        "resilience layer guarantees FaultPlan only sets declared "
        "hooks.  Exception/Enum/Protocol subclasses are exempt.")
    scope = "hot"

    def _exempt(self, node: ast.ClassDef) -> bool:
        if node.name.endswith(("Error", "Exception", "Warning")):
            return True
        for base in node.bases:
            name = dotted_name(base)
            if name is None:
                continue
            leaf = name.split(".")[-1]
            if leaf in _SLOTS_EXEMPT_BASES \
                    or leaf.endswith(("Error", "Exception", "Warning")):
                return True
        return False

    def _declares_slots(self, node: ast.ClassDef) -> bool:
        for dec in node.decorator_list:
            if _is_dataclass_slots(dec):
                return True
        for stmt in node.body:
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id == "__slots__":
                    return True
        return False

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if self._exempt(node) or self._declares_slots(node):
                continue
            yield self.violation(
                source, node,
                f"hot-module class {node.name} has no __slots__; declare "
                f"__slots__ or use @dataclass(slots=True)")


@register
class MutableDefaultRule(Rule):
    id = "mut-default"
    summary = "no mutable default arguments"
    rationale = (
        "A mutable default ([], {}, set()) is evaluated once at def "
        "time and shared by every call — state leaks across calls and, "
        "in sweep workers, across jobs.  Use None and construct inside "
        "the function, or a dataclasses.field(default_factory=...).")
    scope = "all"

    _MUT_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "collections.defaultdict", "Counter",
                  "collections.Counter", "deque", "collections.deque",
                  "OrderedDict", "collections.OrderedDict"}

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return dotted_name(node.func) in self._MUT_CALLS
        return False

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + list(args.kw_defaults):
                if default is not None and self._is_mutable(default):
                    fn = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        source, default,
                        f"mutable default argument in {fn}(); use None "
                        f"and construct inside the body")


def _is_set_expr(node: ast.AST) -> bool:
    """Expressions whose iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class _SetOrderScanner(LintVisitor):
    """Flags order-sensitive consumption of set-typed expressions.

    Tracks, per enclosing function, local names bound to set
    expressions (``xs = {…}`` / ``xs: Set[int] = …``), then flags any
    order-sensitive consumer — a ``for`` loop, comprehension,
    ``list()``/``tuple()``/``enumerate()``/``.join()`` — whose iterable
    is a set expression or such a name.  ``sorted(xs)`` wraps the set
    in a Call node, so sorted consumption naturally passes."""

    _ORDER_SENSITIVE_CALLS = ("list", "tuple", "enumerate")

    def __init__(self) -> None:
        super().__init__()
        self.hits: List[ast.AST] = []
        self._set_locals_stack: List[Set[str]] = [set()]

    # -- local tracking ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node: ast.AST) -> None:
        names: Set[str] = set()
        for stmt in ast.walk(node):
            value = None
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if isinstance(target, ast.Name) and value is not None \
                    and _is_set_expr(value):
                names.add(target.id)
        self._set_locals_stack.append(names)

    def visit(self, node: ast.AST) -> None:  # augment walk with scope pop
        is_function = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef))
        super().visit(node)
        if is_function:
            self._set_locals_stack.pop()

    def _is_set_valued(self, node: ast.AST) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._set_locals_stack[-1]
        return False

    # -- consumers -----------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._is_set_valued(node.iter):
            self.hits.append(node.iter)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        # comprehensions reach us via generic child traversal
        pass

    def _check_comp(self, generators: List[ast.comprehension]) -> None:
        for gen in generators:
            if self._is_set_valued(gen.iter):
                self.hits.append(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comp(node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comp(node.generators)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in self._ORDER_SENSITIVE_CALLS and node.args \
                and self._is_set_valued(node.args[0]):
            self.hits.append(node.args[0])
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "join" and node.args \
                and self._is_set_valued(node.args[0]):
            self.hits.append(node.args[0])


def _literal_slot_names(node: ast.ClassDef) -> List[ast.Constant]:
    """The string constants of a literal ``__slots__`` tuple/list
    assignment in a class body (empty when absent or non-literal)."""
    for stmt in node.body:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        if not any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in targets):
            continue
        value = stmt.value
        if isinstance(value, (ast.Tuple, ast.List)):
            return [el for el in value.elts
                    if isinstance(el, ast.Constant)
                    and isinstance(el.value, str)]
    return []


def _repro_relative(path: str) -> Optional[str]:
    """``repro/cpu/pipeline.py`` for any path whose tail contains a
    ``repro`` component (fixture trees included), else None."""
    parts = os.path.normpath(path).split(os.sep)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return None


@register
class SnapCoverageRule(Rule):
    id = "snap-coverage"
    summary = "snapshot-covered classes must schema every __slots__ entry"
    rationale = (
        "repro.snapshot serializes exactly the attributes its schema "
        "(repro/snapshot/schema.py) lists for each covered class, "
        "partitioned into covered / empty-at-quiescence / rebuilt-by-"
        "constructor.  A new mutable attribute added to one of those "
        "classes but missing from every bucket would silently escape "
        "capture(): restore() would rebuild it at its constructor "
        "default and checkpoint-resumed runs would diverge from "
        "uninterrupted ones.  This rule makes that a lint failure at "
        "the line that added the slot, instead of a determinism bug "
        "found weeks later.")
    scope = "all"

    def check(self, source: SourceFile) -> Iterator[Violation]:
        from repro.snapshot.schema import (SCHEMA_MODULES,
                                           schema_buckets)
        rel = _repro_relative(source.path)
        if rel is None:
            return
        rel_dir = rel.rsplit("/", 1)[0] if "/" in rel else ""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            home = SCHEMA_MODULES.get(node.name)
            # Only checked in the class's home package, so an unrelated
            # class elsewhere that shares a schema name is never
            # misflagged.
            if home is None or rel_dir != home.rsplit("/", 1)[0]:
                continue
            known = schema_buckets(node.name)
            for const in _literal_slot_names(node):
                if const.value in known:
                    continue
                yield self.violation(
                    source, const,
                    f"{node.name}.{const.value} is not in the snapshot "
                    f"schema; add it to covered/empty/transient in "
                    f"repro/snapshot/schema.py (and to the serializer "
                    f"if it must be captured)")


@register
class IterSetOrderRule(Rule):
    id = "iter-set-order"
    summary = "no unsorted set iteration into order-sensitive consumers"
    rationale = (
        "CPython set iteration order is a function of element hashes "
        "and insertion history — an implementation detail, not a "
        "contract.  A `for` loop, list(), or join() over an unsorted "
        "set lets that order leak into event schedules, stats, and "
        "cache keys, which is exactly how 'deterministic' simulators "
        "rot.  Iterate sorted(s) (or keep a list alongside the set).  "
        "Order-insensitive folds (sum, len, min, max, membership) are "
        "fine and not flagged.")
    scope = "hot"

    def check(self, source: SourceFile) -> Iterator[Violation]:
        scanner = _SetOrderScanner()
        scanner.walk(source.tree)
        for node in scanner.hits:
            yield self.violation(
                source, node,
                "set iteration order reaches an order-sensitive "
                "consumer; iterate sorted(...) instead")
