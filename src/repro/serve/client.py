"""A small synchronous client for the serve API (stdlib ``urllib``).

Used by ``repro submit`` / ``repro poll``, the CI smoke, the throughput
benchmark, and the tests — anything that talks to the service from a
plain blocking process.  Transport failures raise :class:`ServeError`;
HTTP-level rejections (429/503/400) come back as normal
``(status, payload)`` results so callers can inspect the structured
body the service went to the trouble of writing.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

DEFAULT_URL = "http://127.0.0.1:8377"


class ServeError(RuntimeError):
    """The service could not be reached, or answered with garbage."""


class ServeClient:
    """Blocking JSON-over-HTTP client for one service base URL."""

    def __init__(self, url: str = DEFAULT_URL,
                 timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[object] = None) -> Tuple[int, Dict]:
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode())
            except ValueError:
                payload = {"error": "non-json-response",
                           "status": exc.code}
            return exc.code, payload
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ServeError(
                f"{method} {self.url}{path} failed: {exc}") from exc

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> Dict:
        return self._request("GET", "/v1/healthz")[1]

    def metrics(self) -> Dict:
        return self._request("GET", "/v1/metrics")[1]

    def submit(self, job: Dict) -> Tuple[int, Dict]:
        """Submit one job; returns ``(status, job document)``."""
        return self._request("POST", "/v1/jobs", job)

    def submit_batch(self, jobs: List[Dict]) -> Dict:
        """Submit a batch; returns the batch document."""
        status, payload = self._request("POST", "/v1/jobs",
                                        {"jobs": jobs})
        if status != 200:
            raise ServeError(f"batch submit failed ({status}): {payload}")
        return payload

    def job(self, job_id: str, wait: Optional[float] = None
            ) -> Tuple[int, Dict]:
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    # -- conveniences --------------------------------------------------

    def wait_ready(self, deadline: float = 10.0) -> Dict:
        """Poll ``/v1/healthz`` until the service answers."""
        t_end = time.monotonic() + deadline
        while True:
            try:
                return self.healthz()
            except ServeError:
                if time.monotonic() >= t_end:
                    raise
                time.sleep(0.05)

    def wait_all(self, job_ids: List[str], deadline: float = 300.0,
                 poll_wait: float = 10.0) -> Dict[str, Dict]:
        """Long-poll every job to a terminal state; id → document.

        Raises :class:`ServeError` if the deadline passes with jobs
        still queued or running.
        """
        docs: Dict[str, Dict] = {}
        t_end = time.monotonic() + deadline
        remaining = list(job_ids)
        while remaining:
            job_id = remaining[0]
            left = t_end - time.monotonic()
            if left <= 0:
                raise ServeError(
                    f"deadline passed with {len(remaining)} job(s) "
                    f"unfinished (first: {job_id})")
            status, doc = self.job(job_id,
                                   wait=min(poll_wait, max(left, 0.1)))
            if status != 200:
                raise ServeError(f"poll {job_id} failed "
                                 f"({status}): {doc}")
            if doc["state"] in ("done", "failed", "rejected"):
                docs[job_id] = doc
                remaining.pop(0)
        return docs
