"""A small synchronous client for the serve API (stdlib ``urllib``).

Used by ``repro submit`` / ``repro poll``, the CI smoke, the throughput
benchmark, and the tests — anything that talks to the service from a
plain blocking process.  Transport failures raise :class:`ServeError`;
HTTP-level rejections (429/503/400) come back as normal
``(status, payload)`` results so callers can inspect the structured
body the service went to the trouble of writing.

With ``retries`` > 0 the client absorbs transient pressure on its own:
a 429/503 is retried after the server's ``Retry-After`` header (falling
back to exponential backoff with jitter), and *idempotent* requests —
the GET polls — are also retried on connection resets, which a fleet
node being killed mid-poll produces.  Retries default to **0** so
callers that assert on the first response (the admission tests, for
one) see exactly what the server said; the CLI and the fleet opt in.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

DEFAULT_URL = "http://127.0.0.1:8377"

#: Statuses that mean "try again shortly", never "you are wrong".
RETRYABLE_STATUSES = (429, 503)
#: Ceiling on a single computed backoff sleep.
MAX_BACKOFF_S = 10.0


class ServeError(RuntimeError):
    """The service could not be reached, or answered with garbage."""


class ServeClient:
    """Blocking JSON-over-HTTP client for one service base URL."""

    def __init__(self, url: str = DEFAULT_URL,
                 timeout: float = 30.0,
                 retries: int = 0,
                 backoff: float = 0.25,
                 client_id: Optional[str] = None) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.client_id = client_id

    # -- transport -----------------------------------------------------

    def _once(self, method: str, path: str,
              body: Optional[object] = None
              ) -> Tuple[int, Dict, Optional[str]]:
        """One attempt: ``(status, payload, Retry-After header)``.
        Raises the underlying transport error unconverted."""
        data = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        req = urllib.request.Request(
            self.url + path, data=data, method=method, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return (resp.status, json.loads(resp.read().decode()),
                        resp.headers.get("Retry-After"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode())
            except ValueError:
                payload = {"error": "non-json-response",
                           "status": exc.code}
            return exc.code, payload, exc.headers.get("Retry-After")

    def _sleep_before_retry(self, attempt: int,
                            retry_after: Optional[str]) -> None:
        """Honour ``Retry-After`` when the server sent one; otherwise
        exponential backoff with full jitter so a thundering herd of
        rejected clients does not come back in lockstep."""
        delay = None
        if retry_after is not None:
            try:
                delay = float(retry_after)
            except ValueError:
                delay = None
        if delay is None:
            delay = self.backoff * (2 ** attempt) * random.random()
        time.sleep(min(max(delay, 0.0), MAX_BACKOFF_S))

    def _request(self, method: str, path: str,
                 body: Optional[object] = None) -> Tuple[int, Dict]:
        idempotent = method == "GET"
        attempt = 0
        while True:
            try:
                status, payload, retry_after = self._once(
                    method, path, body)
            except (urllib.error.URLError, OSError, ValueError) as exc:
                # A connection reset mid-POST may have submitted the
                # job; only GETs are safe to repeat blindly.  (Submits
                # are content-keyed and *would* dedupe server-side, but
                # the caller should know the transport failed.)
                if idempotent and attempt < self.retries:
                    self._sleep_before_retry(attempt, None)
                    attempt += 1
                    continue
                raise ServeError(
                    f"{method} {self.url}{path} failed: {exc}") from exc
            if status in RETRYABLE_STATUSES and attempt < self.retries:
                self._sleep_before_retry(attempt, retry_after)
                attempt += 1
                continue
            return status, payload

    # -- endpoints -----------------------------------------------------

    def get(self, path: str) -> Tuple[int, Dict]:
        """GET an arbitrary API path (e.g. ``/v1/fleet/status``)."""
        return self._request("GET", path)

    def healthz(self) -> Dict:
        return self._request("GET", "/v1/healthz")[1]

    def metrics(self) -> Dict:
        return self._request("GET", "/v1/metrics")[1]

    def submit(self, job: Dict) -> Tuple[int, Dict]:
        """Submit one job; returns ``(status, job document)``."""
        return self._request("POST", "/v1/jobs", job)

    def submit_batch(self, jobs: List[Dict]) -> Dict:
        """Submit a batch; returns the batch document."""
        status, payload = self._request("POST", "/v1/jobs",
                                        {"jobs": jobs})
        if status != 200:
            raise ServeError(f"batch submit failed ({status}): {payload}")
        return payload

    def job(self, job_id: str, wait: Optional[float] = None
            ) -> Tuple[int, Dict]:
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    # -- conveniences --------------------------------------------------

    def wait_ready(self, deadline: float = 10.0) -> Dict:
        """Poll ``/v1/healthz`` until the service answers."""
        t_end = time.monotonic() + deadline
        while True:
            try:
                return self.healthz()
            except ServeError:
                if time.monotonic() >= t_end:
                    raise
                time.sleep(0.05)

    def wait_all(self, job_ids: List[str], deadline: float = 300.0,
                 poll_wait: float = 10.0) -> Dict[str, Dict]:
        """Long-poll every job to a terminal state; id → document.

        Raises :class:`ServeError` if the deadline passes with jobs
        still queued or running.
        """
        docs: Dict[str, Dict] = {}
        t_end = time.monotonic() + deadline
        remaining = list(job_ids)
        while remaining:
            job_id = remaining[0]
            left = t_end - time.monotonic()
            if left <= 0:
                raise ServeError(
                    f"deadline passed with {len(remaining)} job(s) "
                    f"unfinished (first: {job_id})")
            status, doc = self.job(job_id,
                                   wait=min(poll_wait, max(left, 0.1)))
            if status != 200:
                raise ServeError(f"poll {job_id} failed "
                                 f"({status}): {doc}")
            if doc["state"] in ("done", "failed", "rejected"):
                docs[job_id] = doc
                remaining.pop(0)
        return docs
