"""``repro.serve`` — the async sharded simulation service.

Turns the one-shot CLI toolkit into a long-lived batch service: clients
POST litmus/bench jobs to an asyncio HTTP/1.1 JSON API, a sharded
process pool executes them under the sweep runner's crash-tolerance
machinery, and a persistent result store (layered on the sweep's
content-addressed :class:`~repro.sweep.cache.ResultCache`) memoizes
every result across clients, restarts, and plain ``repro sweep`` runs.

The layers, bottom up:

* :mod:`~repro.serve.jobs` — the job model: request parsing, idempotency
  keys, worker-side execution;
* :mod:`~repro.serve.store` — job records + two-tier result store;
* :mod:`~repro.serve.workers` — sharded pool, priority queues, admission
  control, single-flight dedup, stuck-shard watchdog;
* :mod:`~repro.serve.api` — :class:`ServeService` orchestration and the
  hand-rolled HTTP surface, with graceful SIGTERM drain;
* :mod:`~repro.serve.client` — blocking client for CLI/scripts.

Results are deterministic: a stats payload served by the service is
byte-identical to a direct :func:`~repro.sweep.runner.run_sweep` of the
same cell.  See ``docs/SERVICE.md``.
"""

from repro.serve.api import HttpApi, HttpServerBase, ServeService
from repro.serve.client import DEFAULT_URL, ServeClient, ServeError
from repro.serve.jobs import (JOB_KINDS, Job, JobValidationError,
                              LeakSpec, LitmusSpec, execute_request,
                              parse_request, request_key)
from repro.serve.store import ResultStore
from repro.serve.workers import ShardedWorkerPool, StuckShardError

__all__ = [
    "DEFAULT_URL",
    "HttpApi",
    "HttpServerBase",
    "JOB_KINDS",
    "Job",
    "JobValidationError",
    "LeakSpec",
    "LitmusSpec",
    "ResultStore",
    "ServeClient",
    "ServeError",
    "ServeService",
    "ShardedWorkerPool",
    "StuckShardError",
    "execute_request",
    "parse_request",
    "request_key",
]
