"""The service's job model: requests, idempotency keys, execution.

A *job request* is the JSON clients POST to ``/v1/jobs``.  Two kinds
exist:

* ``bench`` (alias ``sweep``) — one simulation cell, exactly a
  :class:`~repro.sweep.runner.SweepJob`: benchmark profile × policy ×
  (cores, length, seed, flags).  Executing it calls the same
  ``execute_job`` the sweep runner uses, so a result served by the
  service is byte-identical to a direct :func:`run_sweep` of the same
  cell — and the two share one cache namespace.
* ``litmus`` — enumerate a named litmus test under one or more memory
  models; the result is the sorted outcome strings per model.
* ``leak`` — run one Spectre gadget from :mod:`repro.leakage` under one
  or more policies with taint-based leakage tracking; the result is the
  per-policy leakage report (``SystemStats.leakage``).
* ``synth`` — search one chunk of a bounded litmus-program space for
  model-pair distinguishers (:mod:`repro.synth`); pure CPU, no
  simulation, and chunks of the same space are independent — the shape
  the fleet scatters for service-scale synthesis.

Every request derives an **idempotency key**: the same content hash the
sweep cache uses (:func:`~repro.sweep.runner.job_key` /
:func:`~repro.sweep.cache.content_key`, both covering
:func:`~repro.sweep.cache.code_version`).  Identical requests — across
clients, across time, across service restarts — name identical results,
which is what lets the store answer repeats without touching a worker
and the pool collapse concurrent duplicates into one simulation.

``execute_request`` is the worker-side entry point: module-level and
operating on picklable specs, so it crosses the ``ProcessPoolExecutor``
boundary, with the sweep runner's SIGALRM deadline guard
(:func:`~repro.sweep.runner.with_deadline`) around both kinds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, List, Optional, Tuple,
                    Union)

from repro.core.policies import POLICY_ORDER
from repro.litmus.operational import enumerate_outcomes
from repro.litmus.registry import litmus_registry
from repro.models import model_names
from repro.sweep.cache import code_version, content_key
from repro.sweep.runner import (SweepJob, execute_job, job_key,
                                with_deadline)

if TYPE_CHECKING:  # pragma: no cover — keeps the synth machinery off
    from repro.synth.space import SynthBounds  # the worker boot path

#: Request kinds accepted by ``POST /v1/jobs``.
JOB_KINDS = ("bench", "sweep", "litmus", "leak", "synth")

#: Default priority; lower runs earlier within a shard.
DEFAULT_PRIORITY = 100


class JobValidationError(ValueError):
    """A malformed job request.  ``payload`` is the structured 400-style
    body the API returns verbatim."""

    def __init__(self, message: str, detail: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.payload = {"error": "invalid-job", "status": 400,
                        "message": message}
        if detail:
            self.payload.update(detail)


@dataclass(frozen=True)
class LitmusSpec:
    """One litmus enumeration request: a named battery program under a
    tuple of memory models."""

    name: str
    models: Tuple[str, ...] = model_names()


@dataclass(frozen=True)
class LeakSpec:
    """One leakage-gadget request: a named Spectre gadget under a tuple
    of policies, run with taint tracking attached."""

    gadget: str
    policies: Tuple[str, ...] = tuple(POLICY_ORDER)


@dataclass(frozen=True)
class SynthSpec:
    """One synthesis chunk: search ``chunk`` of ``chunks`` congruence
    classes of a bounded program space for model-pair distinguishers."""

    bounds: "SynthBounds"
    pairs: Tuple[Tuple[str, str], ...]
    chunk: int = 0
    chunks: int = 1
    limit: int = 0


#: What a job executes: sweep cell, litmus enumeration, leak run, or
#: synthesis chunk.
JobSpec = Union[SweepJob, LitmusSpec, LeakSpec, "SynthSpec"]


# ----------------------------------------------------------------------
# Request parsing / serialization
# ----------------------------------------------------------------------

def _require_type(data: Dict, name: str, types, default):
    value = data.get(name, default)
    if value is default:
        return value
    if isinstance(value, bool) and bool not in (
            types if isinstance(types, tuple) else (types,)):
        raise JobValidationError(
            f"field {name!r} must be {types}, got a bool")
    if not isinstance(value, types):
        raise JobValidationError(
            f"field {name!r} must be {getattr(types, '__name__', types)}, "
            f"got {type(value).__name__}")
    return value


def parse_request(data: object) -> "Tuple[str, JobSpec, int]":
    """Validate one job-request dict → ``(kind, spec, priority)``.

    Raises :class:`JobValidationError` with a structured payload on any
    malformed field — unknown kind, unknown benchmark/policy/test name,
    wrong types, stray keys — so a typo is a 400, not a queued job that
    explodes in a worker.
    """
    if not isinstance(data, dict):
        raise JobValidationError(
            f"job request must be an object, got {type(data).__name__}")
    kind = data.get("kind", "bench")
    if kind not in JOB_KINDS:
        raise JobValidationError(
            f"unknown job kind {kind!r}", {"kinds": list(JOB_KINDS)})
    priority = _require_type(data, "priority", int, DEFAULT_PRIORITY)

    if kind == "litmus":
        allowed = {"kind", "priority", "name", "models"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise JobValidationError(
                f"unknown field(s) for a litmus job: {unknown}")
        name = data.get("name")
        if not isinstance(name, str):
            raise JobValidationError("litmus jobs need a 'name' string")
        if name not in litmus_registry():
            raise JobValidationError(
                f"unknown litmus test {name!r}",
                {"known": sorted(litmus_registry())})
        registered = model_names()
        models = data.get("models")
        if models is None:
            models = list(registered)
        if (not isinstance(models, list) or not models
                or not all(isinstance(m, str) for m in models)):
            raise JobValidationError(
                "'models' must be a non-empty list of model names")
        bad = sorted(set(models) - set(registered))
        if bad:
            raise JobValidationError(
                f"unknown model(s) {bad}", {"models": list(registered)})
        return kind, LitmusSpec(name, tuple(models)), priority

    if kind == "leak":
        allowed = {"kind", "priority", "gadget", "policies"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise JobValidationError(
                f"unknown field(s) for a leak job: {unknown}")
        gadget = data.get("gadget")
        if not isinstance(gadget, str):
            raise JobValidationError("leak jobs need a 'gadget' string")
        from repro.leakage import GADGETS
        if gadget not in GADGETS:
            raise JobValidationError(
                f"unknown gadget {gadget!r}", {"known": sorted(GADGETS)})
        policies = data.get("policies")
        if policies is None:
            policies = list(POLICY_ORDER)
        if (not isinstance(policies, list) or not policies
                or not all(isinstance(p, str) for p in policies)):
            raise JobValidationError(
                "'policies' must be a non-empty list of policy names")
        bad = sorted(set(policies) - set(POLICY_ORDER))
        if bad:
            raise JobValidationError(
                f"unknown policy(ies) {bad}",
                {"policies": list(POLICY_ORDER)})
        return kind, LeakSpec(gadget, tuple(policies)), priority

    if kind == "synth":
        allowed = {"kind", "priority", "bounds", "pairs", "chunk",
                   "chunks", "limit"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise JobValidationError(
                f"unknown field(s) for a synth job: {unknown}")
        from repro.synth.search import MODEL_PAIRS
        from repro.synth.space import LATTICE, SynthBounds
        bounds_data = data.get("bounds")
        if not isinstance(bounds_data, dict):
            raise JobValidationError("synth jobs need a 'bounds' object")
        try:
            bounds = SynthBounds.from_dict(bounds_data)
        except (TypeError, ValueError) as exc:
            raise JobValidationError(f"bad synth bounds: {exc}")
        pairs_data = data.get("pairs")
        if pairs_data is None:
            pairs_data = [list(pair) for pair in MODEL_PAIRS]
        if (not isinstance(pairs_data, list) or not pairs_data
                or not all(isinstance(p, list) and len(p) == 2
                           and all(isinstance(m, str) for m in p)
                           for p in pairs_data)):
            raise JobValidationError(
                "'pairs' must be a non-empty list of [strong, weak] "
                "model-name pairs")
        for strong, weak in pairs_data:
            bad = sorted({strong, weak} - set(LATTICE))
            if bad:
                raise JobValidationError(
                    f"unknown model(s) {bad}", {"models": list(LATTICE)})
            if LATTICE.index(strong) >= LATTICE.index(weak):
                raise JobValidationError(
                    f"pair [{strong}, {weak}] is not (stronger, weaker) "
                    f"in the {' / '.join(LATTICE)} lattice")
        chunk = _require_type(data, "chunk", int, 0)
        chunks = _require_type(data, "chunks", int, 1)
        if chunks < 1 or not (0 <= chunk < chunks):
            raise JobValidationError(
                f"bad chunk {chunk}/{chunks}: need 0 <= chunk < chunks")
        limit = _require_type(data, "limit", int, 0)
        if limit < 0:
            raise JobValidationError("'limit' must be >= 0")
        return kind, SynthSpec(
            bounds=bounds,
            pairs=tuple((strong, weak) for strong, weak in pairs_data),
            chunk=chunk, chunks=chunks, limit=limit), priority

    # bench / sweep: a SweepJob in wire form.
    spec_fields = {k: v for k, v in data.items()
                   if k not in ("kind", "priority")}
    try:
        job = SweepJob.from_dict(spec_fields)
    except (TypeError, ValueError) as exc:
        raise JobValidationError(str(exc))
    _require_type(spec_fields, "name", str, None)
    _require_type(spec_fields, "policy", str, None)
    _require_type(spec_fields, "cores", int, None)
    _require_type(spec_fields, "length", int, None)
    _require_type(spec_fields, "seed", int, None)
    if job.policy not in POLICY_ORDER:
        raise JobValidationError(
            f"unknown policy {job.policy!r}",
            {"policies": list(POLICY_ORDER)})
    from repro.workloads.profiles import PROFILES
    if job.name not in PROFILES:
        raise JobValidationError(
            f"unknown benchmark {job.name!r}",
            {"known": sorted(PROFILES)})
    if job.cores < 1 or job.cores > 64:
        raise JobValidationError("'cores' must be in [1, 64]")
    if job.length is not None and job.length < 1:
        raise JobValidationError("'length' must be >= 1")
    return kind, job, priority


def spec_to_dict(kind: str, spec: JobSpec) -> Dict:
    """Wire form of a parsed spec (inverse of :func:`parse_request`,
    minus the priority)."""
    if isinstance(spec, LitmusSpec):
        return {"kind": "litmus", "name": spec.name,
                "models": list(spec.models)}
    if isinstance(spec, LeakSpec):
        return {"kind": "leak", "gadget": spec.gadget,
                "policies": list(spec.policies)}
    if isinstance(spec, SynthSpec):
        return {"kind": "synth", "bounds": spec.bounds.to_dict(),
                "pairs": [list(pair) for pair in spec.pairs],
                "chunk": spec.chunk, "chunks": spec.chunks,
                "limit": spec.limit}
    out = {"kind": kind}
    out.update(spec.to_dict())
    return out


def request_key(spec: JobSpec) -> str:
    """The idempotency / cache key of a request's *result*.

    Sweep cells reuse :func:`repro.sweep.runner.job_key` verbatim, so
    the service's store and the sweep runner's disk cache are one
    namespace: a result computed by either is a hit for both.  Litmus
    keys hash the (name, models) closure plus the simulator source
    version, like every other key.
    """
    if isinstance(spec, SweepJob):
        return job_key(spec)
    if isinstance(spec, LeakSpec):
        return content_key({
            "schema": 1,
            "kind": "leak",
            "gadget": spec.gadget,
            "policies": list(spec.policies),
            "code": code_version(),
        })
    if isinstance(spec, SynthSpec):
        return content_key({
            "schema": 1,
            "kind": "synth",
            "bounds": spec.bounds.to_dict(),
            "pairs": [list(pair) for pair in spec.pairs],
            "chunk": spec.chunk,
            "chunks": spec.chunks,
            "limit": spec.limit,
            "code": code_version(),
        })
    return content_key({
        "schema": 1,
        "kind": "litmus",
        "name": spec.name,
        "models": list(spec.models),
        "code": code_version(),
    })


# ----------------------------------------------------------------------
# Execution (worker side)
# ----------------------------------------------------------------------

def execute_litmus(spec: LitmusSpec) -> Dict:
    """Enumerate a litmus test; deterministic, JSON-safe payload."""
    program = litmus_registry()[spec.name]
    models: Dict[str, List[str]] = {}
    for model in spec.models:
        outcomes = enumerate_outcomes(program, model)
        models[model] = sorted(str(o) for o in outcomes)
    return {
        "kind": "litmus",
        "name": spec.name,
        "models": models,
        "counts": {model: len(out) for model, out in models.items()},
    }


def execute_leak(spec: LeakSpec) -> Dict:
    """Run one gadget under each requested policy with tracking on."""
    from repro.leakage import GADGETS, leak_run

    gadget = GADGETS[spec.gadget]
    policies: Dict[str, Dict] = {}
    for policy in spec.policies:
        stats, _report, _system = leak_run(gadget, policy)
        policies[policy] = stats.leakage
    return {
        "kind": "leak",
        "gadget": spec.gadget,
        "policies": policies,
        "leaked_lines": {policy: len(report["leaked_lines"])
                         for policy, report in policies.items()},
    }


def execute_synth(spec: SynthSpec) -> Dict:
    """Search one synthesis chunk; deterministic, JSON-safe payload
    (the :class:`repro.synth.search.SynthResult` wire form)."""
    from repro.synth.search import search

    result = search(spec.bounds, pairs=spec.pairs, chunk=spec.chunk,
                    chunks=spec.chunks, limit=spec.limit)
    payload = result.to_dict()
    payload["kind"] = "synth"
    return payload


def execute_request(spec: JobSpec, timeout: Optional[float] = None,
                    cache_dir: Optional[str] = None) -> Dict:
    """Run one job spec to completion under the deadline guard.

    Module-level (pickles for the process pool).  Returns the result
    payload the store persists: for sweep cells this is exactly
    ``SystemStats.to_dict()`` — the same bytes ``run_sweep`` caches.
    ``cache_dir`` lets checkpointed sweep cells persist their resume
    blob and progress document where the service's store can see them.
    """
    if isinstance(spec, SweepJob):
        return with_deadline(lambda: execute_job(spec, cache_dir), timeout,
                             f"{spec.name}/{spec.policy}")
    if isinstance(spec, LeakSpec):
        return with_deadline(lambda: execute_leak(spec), timeout,
                             f"leak:{spec.gadget}")
    if isinstance(spec, SynthSpec):
        return with_deadline(
            lambda: execute_synth(spec), timeout,
            f"synth:{spec.chunk}/{spec.chunks}")
    return with_deadline(lambda: execute_litmus(spec), timeout,
                         f"litmus:{spec.name}")


# ----------------------------------------------------------------------
# The job record
# ----------------------------------------------------------------------

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
REJECTED = "rejected"

_ids = itertools.count(1)


def next_job_id() -> str:
    """Process-unique job id (monotone; readable in logs)."""
    return f"job-{next(_ids):06d}"


@dataclass
class Job:
    """One submitted job: spec + lifecycle + result.

    ``key`` is the idempotency key; several Job records may share it
    (duplicate submissions), in which case exactly one is the *primary*
    the pool executes and the rest are marked ``deduped`` and complete
    together with it.
    """

    id: str
    kind: str
    spec: JobSpec
    key: str
    priority: int = DEFAULT_PRIORITY
    state: str = QUEUED
    shard: Optional[int] = None
    deduped: bool = False
    cache_hit: bool = False
    attempts: int = 0
    submitted_at: float = 0.0          # time.monotonic()
    finished_at: Optional[float] = None
    result: Optional[Dict] = None
    error: Optional[Dict] = None
    rejection: Optional[Dict] = None
    # Set by the service; completion is signalled through it so HTTP
    # long-polls (?wait=) and the drain path can await jobs cheaply.
    _done_event: Optional[object] = field(default=None, repr=False)

    def to_dict(self, include_result: bool = True) -> Dict:
        """The API's job-status document."""
        out = {
            "id": self.id,
            "kind": self.kind,
            "spec": spec_to_dict(self.kind, self.spec),
            "key": self.key,
            "priority": self.priority,
            "state": self.state,
            "shard": self.shard,
            "deduped": self.deduped,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
        }
        if self.state == DONE and include_result:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.rejection is not None:
            out["rejection"] = self.rejection
        return out
