"""The service itself: orchestration + a hand-rolled asyncio HTTP API.

:class:`ServeService` ties the layers together — parse a request
(:mod:`repro.serve.jobs`), answer from the store if the key is known
(:mod:`repro.serve.store`), otherwise admit into the sharded pool
(:mod:`repro.serve.workers`) — and owns the metrics registry and the
graceful-drain state machine.

:class:`HttpServerBase` is a deliberately small HTTP/1.1 server written
directly on ``asyncio.start_server`` (no ``http.server``, no
frameworks): parse a request line + headers + Content-Length body,
route, write a JSON response, honour keep-alive.  :class:`HttpApi`
subclasses it with the service's routes; the fleet coordinator
(:mod:`repro.fleet.coordinator`) subclasses it with its own.  Endpoints
of the worker/service surface:

=============================  ========================================
``POST /v1/jobs``              submit one job object or a batch
                               (``{"jobs": [...]}`` or a bare list)
``GET /v1/jobs/<id>``          job status + result; ``?wait=SECONDS``
                               long-polls for completion
``GET /v1/healthz``            liveness + degraded/drain state
``GET /v1/metrics``            the full metrics snapshot: queue depth,
                               per-shard occupancy, cache hit rate,
                               jobs/sec, latency histograms
``GET /v1/store``              manifest of stored result keys
``GET /v1/store/<key>``        one stored result payload (404 on miss)
``PUT /v1/store/<key>``        store a replicated result payload
=============================  ========================================

The ``/v1/store`` tier is the fleet's replication substrate: the
coordinator write-throughs finished results to their ring owners,
read-repairs misses, and anti-entropy-syncs a rejoining node through
exactly these three endpoints.

Rejections carry a ``Retry-After`` header (derived from the structured
``retry_after_s`` the payloads already contain) so well-behaved clients
— including :class:`~repro.serve.client.ServeClient` — can back off
precisely instead of guessing.

On SIGTERM (or SIGINT) the server drains gracefully: admission starts
returning 503s immediately, queued and in-flight jobs run to
completion, the store is flushed, and only then does the process exit —
a client that got a 202 will always be able to poll its result from the
shared cache afterwards.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import (DONE, FAILED, REJECTED, RUNNING, Job,
                              JobValidationError, next_job_id,
                              parse_request, request_key)
from repro.serve.store import ResultStore
from repro.serve.workers import NoteFn, ShardedWorkerPool

#: Largest request body the API will read (a generous batch).
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Cap on ``?wait=`` long-poll time.
MAX_WAIT_S = 60.0
#: How long after a shard incident (watchdog recycle, broken-pool
#: replacement) ``/v1/healthz`` keeps reporting "degraded".
DEGRADED_WINDOW_S = 60.0


class ServeService:
    """Everything behind the HTTP surface, usable directly in-process
    (the tests and the throughput benchmark drive it both ways)."""

    def __init__(self,
                 shards: int = 2,
                 shard_workers: int = 1,
                 queue_limit: int = 64,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 backoff: float = 0.5,
                 stuck_after: Optional[float] = None,
                 cache: bool = True,
                 cache_dir=None,
                 cache_max_bytes: Optional[int] = None,
                 degraded_window: float = DEGRADED_WINDOW_S,
                 on_note: Optional[NoteFn] = None) -> None:
        self.on_note = on_note
        self.metrics = MetricsRegistry()
        self.store = ResultStore(cache_dir=cache_dir, persistent=cache,
                                 max_bytes=cache_max_bytes,
                                 on_warning=on_note)
        self.pool = ShardedWorkerPool(
            self.store, self.metrics, shards=shards,
            shard_workers=shard_workers, queue_limit=queue_limit,
            timeout=timeout, retries=retries, backoff=backoff,
            stuck_after=stuck_after, on_note=on_note,
            on_complete=self._job_completed)
        self.started_at = time.monotonic()
        self.draining = False
        self.degraded_window = degraded_window
        self._register_gauges()

    def _note(self, msg: str) -> None:
        if self.on_note is not None:
            self.on_note(msg)

    def _register_gauges(self) -> None:
        m = self.metrics
        m.gauge("uptime_s",
                lambda: round(time.monotonic() - self.started_at, 3))
        m.gauge("draining", lambda: self.draining)
        m.gauge("shards", lambda: len(self.pool.shards))
        m.gauge("queue_depth", lambda: sum(self.pool.queue_depths()))
        m.gauge("inflight", lambda: sum(
            len(s.inflight) for s in self.pool.shards))
        m.gauge("jobs_tracked", lambda: self.store.jobs_tracked)
        m.gauge("cache_hit_rate",
                lambda: round(self.store.hit_rate(), 4))
        m.gauge("jobs_per_sec", self._jobs_per_sec)

    def _jobs_per_sec(self) -> float:
        finished = (self.metrics.counter("jobs_executed")
                    + self.metrics.counter("jobs_cache_hit")
                    + self.metrics.counter("jobs_deduped"))
        uptime = time.monotonic() - self.started_at
        return round(finished / uptime, 3) if uptime > 0 else 0.0

    # -- submission ----------------------------------------------------

    def _job_completed(self, job: Job) -> None:
        event = job._done_event
        if event is not None:
            event.set()

    def _terminal(self, job: Job) -> None:
        """Mark a job that never enters the pool (hit / rejection)."""
        job.finished_at = time.monotonic()
        self.store.finished(job)
        self._job_completed(job)

    def submit_one(self, data: object) -> Job:
        """Parse, dedupe, admit, queue one request; always returns a
        registered Job record (possibly already DONE or REJECTED).

        Raises :class:`JobValidationError` for malformed requests —
        nothing is registered for those.
        """
        kind, spec, priority = parse_request(data)
        job = Job(id=next_job_id(), kind=kind, spec=spec,
                  key=request_key(spec), priority=priority,
                  submitted_at=time.monotonic())
        job._done_event = asyncio.Event()
        self.metrics.inc("jobs_submitted")
        self.store.register(job)

        cached = self.store.get(job.key)
        if cached is not None:
            job.state = DONE
            job.cache_hit = True
            job.result = cached
            self.metrics.inc("jobs_cache_hit")
            self.metrics.observe("job_latency_ms", 0)
            self._terminal(job)
            return job

        rejection = self.pool.try_admit(job)
        if rejection is not None:
            job.state = REJECTED
            job.rejection = rejection
            self.metrics.inc("jobs_rejected")
            self._terminal(job)
            return job

        self.pool.submit(job)
        return job

    def submit_batch(self, items: List[object]) -> List[Dict]:
        """Submit a batch; one status document per entry, in order.
        Invalid entries become inline error documents and do not abort
        the rest of the batch."""
        docs: List[Dict] = []
        for item in items:
            try:
                job = self.submit_one(item)
            except JobValidationError as exc:
                self.metrics.inc("jobs_invalid")
                docs.append({"state": "invalid", "error": exc.payload})
                continue
            docs.append(job.to_dict())
        return docs

    async def wait_for(self, job: Job, timeout: float) -> None:
        event = job._done_event
        if event is None or job.state in (DONE, REJECTED, FAILED):
            return
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            pass

    # -- documents -----------------------------------------------------

    def healthz(self) -> Dict:
        """Liveness *and* health: ``state`` is ``"ok"`` or
        ``"degraded"`` with the reasons spelled out — drain in
        progress, a recent stuck-shard watchdog recycle, a recent
        broken-pool replacement — so a fleet coordinator's liveness
        checks can tell a sick node from a dead one.  ``ok`` stays
        ``True`` whenever the process can answer at all."""
        reasons: List[str] = []
        if self.draining:
            reasons.append("drain-in-progress")
        incident = self.pool.last_incident
        if incident is not None and (
                time.monotonic() - incident[0] < self.degraded_window):
            reasons.append(incident[1])
        return {
            "ok": True,
            "state": "degraded" if reasons else "ok",
            "degraded": reasons,
            "draining": self.draining,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "shards": len(self.pool.shards),
            "queue_depth": sum(self.pool.queue_depths()),
            "recycles": self.metrics.counter("shard_recycles"),
            "pool_replacements": self.metrics.counter(
                "pool_replacements"),
        }

    def metrics_snapshot(self) -> Dict:
        snap = self.metrics.snapshot()
        snap["shards"] = self.pool.occupancy()
        snap["store"] = {
            "hits": self.store.hits,
            "misses": self.store.misses,
            "puts": self.store.puts,
            "hit_rate": round(self.store.hit_rate(), 4),
        }
        return snap

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Attach loop-bound machinery (call from inside the loop)."""
        self.pool.start_watchdog()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, run the backlog dry, flush the store."""
        self.draining = True
        self.pool.draining = True
        self._note("serve: draining (admission closed)")
        drained = await self.pool.drain(timeout)
        self.store.flush()
        outcome = "complete" if drained else "timed out"
        self._note(f"serve: drain {outcome}; store flushed")
        return drained


# ----------------------------------------------------------------------
# HTTP/1.1 surface
# ----------------------------------------------------------------------

class _BadRequest(Exception):
    """Protocol-level garbage; maps to a 400 and closes the stream."""


class HttpServerBase:
    """Minimal asyncio HTTP/1.1 JSON server: wire parsing, response
    formatting, keep-alive, signal-driven graceful shutdown.

    Subclasses provide the application:  set ``self.metrics`` (a
    :class:`MetricsRegistry` — used for ``http_requests`` /
    ``http_errors`` accounting), implement :meth:`_route`, and override
    the :meth:`_on_start` / :meth:`_drain` lifecycle hooks.  Both the
    serve node (:class:`HttpApi`) and the fleet coordinator are this
    class with different routes.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8377) -> None:
        self.host = host
        self.port = port              # updated to the bound port
        self.metrics = MetricsRegistry()
        self.server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- subclass surface ----------------------------------------------

    async def _route(self, method: str, target: str, headers: Dict,
                     body: bytes) -> Tuple[int, Dict]:
        raise NotImplementedError

    def _on_start(self) -> None:
        """Attach loop-bound machinery (called from inside the loop)."""

    async def _drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful-shutdown hook; return True when fully drained."""
        return True

    # -- wire helpers --------------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader):
        """One request → (method, path, headers, body) or None at EOF."""
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").rstrip("\r\n").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line: {line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 100:
                raise _BadRequest("too many headers")
            text = raw.decode("latin-1").rstrip("\r\n")
            name, sep, value = text.partition(":")
            if not sep:
                raise _BadRequest(f"malformed header: {text!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _BadRequest(f"bad Content-Length: {length!r}")
            if n < 0 or n > MAX_BODY_BYTES:
                raise _BadRequest(f"Content-Length {n} out of range")
            body = await reader.readexactly(n)
        elif headers.get("transfer-encoding"):
            raise _BadRequest("chunked request bodies are not supported")
        return method, target, headers, body

    @staticmethod
    def _retry_after_s(status: int, payload: Dict) -> Optional[float]:
        """Seconds a client should wait before retrying, or None.

        429/503 rejections already carry a structured ``retry_after_s``
        (top-level or inside a job document's ``rejection``); surface it
        as a real ``Retry-After`` header with sane defaults."""
        if status not in (429, 503):
            return None
        rejection = payload.get("rejection")
        for source in (payload, rejection if isinstance(rejection, dict)
                       else {}):
            value = source.get("retry_after_s")
            if isinstance(value, (int, float)) and not isinstance(
                    value, bool) and value > 0:
                return float(value)
        return 1.0 if status == 429 else 5.0

    @classmethod
    def _response(cls, status: int, payload: Dict,
                  keep_alive: bool) -> bytes:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   429: "Too Many Requests", 500: "Internal Server Error",
                   503: "Service Unavailable"}
        body = json.dumps(payload, sort_keys=True).encode()
        retry_after = cls._retry_after_s(status, payload)
        extra = ""
        if retry_after is not None:
            # Integer seconds per RFC 9110; never advertise zero.
            extra = f"Retry-After: {max(1, round(retry_after))}\r\n"
        head = (f"HTTP/1.1 {status} {reasons.get(status, 'Status')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        return head.encode("latin-1") + body

    # -- connection handler -------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    self.metrics.inc("http_errors")
                    writer.write(self._response(
                        400, {"error": "bad-request", "status": 400,
                              "message": str(exc)}, keep_alive=False))
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get(
                    "connection", "keep-alive").lower() != "close"
                status, payload = await self._dispatch(
                    method, target, headers, body)
                writer.write(self._response(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, method: str, target: str, headers: Dict,
                        body: bytes) -> Tuple[int, Dict]:
        self.metrics.inc("http_requests")
        try:
            return await self._route(method, target, headers, body)
        except Exception as exc:  # a handler bug must not kill the loop
            self.metrics.inc("http_errors")
            return 500, {"error": "internal", "status": 500,
                         "message": f"{type(exc).__name__}: {exc}"}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._on_start()
        self.server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self.server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Signal-safe: flips the event the serve loop waits on."""
        self._shutdown.set()

    async def run(self, ready=None,
                  drain_timeout: Optional[float] = None,
                  install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`),
        then drain gracefully.  ``ready`` (if given) is called with the
        bound port once the socket is listening."""
        await self.start()
        if ready is not None:
            ready(self.port)
        loop = asyncio.get_running_loop()
        installed = []
        if install_signals:
            for signame in ("SIGTERM", "SIGINT"):
                signum = getattr(signal, signame, None)
                if signum is None:
                    continue
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError):
                    pass
        try:
            await self._shutdown.wait()
            # Close the listening socket *after* flipping draining so
            # in-flight connections still get their 503s / results.
            await self._drain(drain_timeout)
            self.server.close()
            await self.server.wait_closed()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    async def stop(self, drain_timeout: Optional[float] = None) -> None:
        """Programmatic shutdown for in-process embedding (tests)."""
        await self._drain(drain_timeout)
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()


def _is_result_key(key: str) -> bool:
    """A store key must look like the content hashes we mint (64 hex
    chars) — anything else 400s before it can name a cache file."""
    return len(key) == 64 and all(c in "0123456789abcdef" for c in key)


class HttpApi(HttpServerBase):
    """The serve-node HTTP surface over a :class:`ServeService`."""

    def __init__(self, service: ServeService,
                 host: str = "127.0.0.1", port: int = 8377) -> None:
        super().__init__(host=host, port=port)
        self.service = service
        self.metrics = service.metrics

    def _on_start(self) -> None:
        self.service.start()

    async def _drain(self, timeout: Optional[float] = None) -> bool:
        return await self.service.drain(timeout)

    # -- routes --------------------------------------------------------

    async def _route(self, method: str, target: str, headers: Dict,
                     body: bytes) -> Tuple[int, Dict]:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)
        if path == "/v1/jobs":
            if method != "POST":
                return 405, {"error": "method-not-allowed",
                             "status": 405, "allow": ["POST"]}
            return await self._post_jobs(body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "method-not-allowed",
                             "status": 405, "allow": ["GET"]}
            return await self._get_job(path[len("/v1/jobs/"):], query)
        if path == "/v1/store":
            if method != "GET":
                return 405, {"error": "method-not-allowed",
                             "status": 405, "allow": ["GET"]}
            return 200, {"keys": self.service.store.keys()}
        if path.startswith("/v1/store/"):
            return self._store_entry(method, path[len("/v1/store/"):],
                                     body)
        if path == "/v1/healthz":
            return 200, self.service.healthz()
        if path == "/v1/metrics":
            return 200, self.service.metrics_snapshot()
        return 404, {"error": "not-found", "status": 404,
                     "path": path}

    async def _post_jobs(self, body: bytes) -> Tuple[int, Dict]:
        try:
            data = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": "bad-json", "status": 400,
                         "message": str(exc)}
        if isinstance(data, dict) and "jobs" in data:
            items = data["jobs"]
            if not isinstance(items, list):
                return 400, {"error": "bad-batch", "status": 400,
                             "message": "'jobs' must be a list"}
        elif isinstance(data, list):
            items = data
        elif isinstance(data, dict):
            # Single job: status code mirrors the job's fate.
            try:
                job = self.service.submit_one(data)
            except JobValidationError as exc:
                self.service.metrics.inc("jobs_invalid")
                return 400, exc.payload
            doc = job.to_dict()
            if job.state == REJECTED:
                return job.rejection.get("status", 429), doc
            return (200 if job.state == DONE else 202), doc
        else:
            return 400, {"error": "bad-request", "status": 400,
                         "message": "expected a job object, a list, or "
                                    "{'jobs': [...]}"}
        docs = self.service.submit_batch(items)
        states = [d.get("state") for d in docs]
        return 200, {
            "jobs": docs,
            "accepted": sum(s in ("queued", "running", "done")
                            for s in states),
            "rejected": states.count("rejected"),
            "invalid": states.count("invalid"),
        }

    async def _get_job(self, job_id: str, query: Dict) -> Tuple[int, Dict]:
        job = self.service.store.job(job_id)
        if job is None:
            return 404, {"error": "unknown-job", "status": 404,
                         "id": job_id}
        wait = query.get("wait")
        if wait:
            try:
                seconds = min(float(wait[0]), MAX_WAIT_S)
            except ValueError:
                return 400, {"error": "bad-wait", "status": 400,
                             "message": f"wait={wait[0]!r} is not a "
                                        f"number"}
            await self.service.wait_for(job, seconds)
        out = job.to_dict()
        if job.state == RUNNING:
            # Checkpointed cells stream partial progress through the
            # store as they run; surface it to pollers so a long job is
            # distinguishable from a stuck one.
            prog = self.service.store.progress(job.key)
            if prog is not None:
                out["progress"] = prog
        return 200, out

    def _store_entry(self, method: str, key: str,
                     body: bytes) -> Tuple[int, Dict]:
        """The replication substrate: read or write one stored result."""
        if not _is_result_key(key):
            return 400, {"error": "bad-key", "status": 400,
                         "message": "store keys are 64 lowercase hex "
                                    "characters"}
        if method == "GET":
            payload = self.service.store.peek(key)
            if payload is None:
                return 404, {"error": "unknown-key", "status": 404,
                             "key": key}
            return 200, {"key": key, "result": payload}
        if method == "PUT":
            try:
                payload = json.loads(body.decode() or "null")
            except (ValueError, UnicodeDecodeError) as exc:
                return 400, {"error": "bad-json", "status": 400,
                             "message": str(exc)}
            if not isinstance(payload, dict):
                return 400, {"error": "bad-payload", "status": 400,
                             "message": "store payloads are result "
                                        "objects"}
            self.service.store.put(key, payload)
            self.service.metrics.inc("store_replica_puts")
            return 200, {"stored": True, "key": key}
        return 405, {"error": "method-not-allowed", "status": 405,
                     "allow": ["GET", "PUT"]}
