"""The persistent result store: job records + a shared memoization tier.

Layered on :class:`~repro.sweep.cache.ResultCache`, which already gives
us content-addressed, atomically-written, corruption-tolerant JSON files
keyed by the same hashes the sweep runner uses.  The store adds:

* an **in-memory tier** (key → payload) so repeat hits inside one
  service process never touch the filesystem;
* the **job registry** (id → :class:`~repro.serve.jobs.Job`) with a
  bounded history of finished jobs, so ``GET /v1/jobs/<id>`` stays O(1)
  and a long-lived service does not leak one record per request ever
  served;
* hit/miss accounting for the ``/v1/metrics`` cache-hit rate.

Because the disk tier *is* the sweep cache, the memoization is shared
three ways: across service clients, across service restarts, and with
plain ``repro sweep`` runs against the same cache directory.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Optional, Union

from repro.serve.jobs import DONE, FAILED, REJECTED, Job
from repro.sweep.cache import ResultCache

#: Finished-job records kept for polling before the oldest are dropped.
DEFAULT_HISTORY = 4096


class ResultStore:
    """Job records + two-tier (memory, disk) result memoization."""

    def __init__(self,
                 cache_dir: Union[str, os.PathLike, None] = None,
                 persistent: bool = True,
                 max_bytes: Optional[int] = None,
                 history: int = DEFAULT_HISTORY,
                 on_warning=None) -> None:
        self.disk = (ResultCache(cache_dir, on_warning=on_warning,
                                 max_bytes=max_bytes)
                     if persistent else None)
        self.history = history
        self._memory: Dict[str, Dict] = {}
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._live = 0                 # jobs not yet in a terminal state
        self.hits = 0                  # get() calls answered (any tier)
        self.misses = 0
        self.puts = 0

    # -- result tier ---------------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload for ``key`` or None, memory tier first."""
        payload = self._memory.get(key)
        if payload is None and self.disk is not None:
            payload = self.disk.get(key)
            if payload is not None:
                self._memory[key] = payload
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def put(self, key: str, payload: Dict) -> None:
        """Store a finished result in both tiers."""
        self.puts += 1
        self._memory[key] = payload
        if self.disk is not None:
            self.disk.put(key, payload)

    def peek(self, key: str) -> Optional[Dict]:
        """Like :meth:`get` but without hit/miss accounting — used by
        the fleet's replication reads, which would otherwise skew the
        client-facing cache-hit rate every anti-entropy pass."""
        payload = self._memory.get(key)
        if payload is None and self.disk is not None:
            payload = self.disk.get(key)
            if payload is not None:
                self._memory[key] = payload
        return payload

    def progress(self, key: str) -> Optional[Dict]:
        """The latest checkpoint progress document for ``key``, or None.

        Written by checkpointed sweep cells as they run (see
        ``ResultCache.put_progress``); disk tier only, since a running
        job's progress is produced by a worker process, not this one.
        """
        if self.disk is None:
            return None
        return self.disk.get_progress(key)

    def keys(self) -> "list[str]":
        """Sorted keys of every durable result this store holds — the
        manifest the fleet's replication layer diffs between nodes.
        Disk tier when persistent (it outlives the process and is what
        a replica peer could actually fetch), memory tier otherwise."""
        if self.disk is not None:
            return self.disk.keys()
        return sorted(self._memory)

    def cache_dir(self) -> Optional[str]:
        """The disk tier's directory (where workers should put
        checkpoint blobs and progress), or None when ephemeral."""
        if self.disk is None:
            return None
        return str(self.disk.directory)

    def flush(self) -> None:
        """Drain-time barrier: make the disk tier durable.

        ``ResultCache.put`` already writes through on every store, so
        flushing is a directory fsync — enough to survive the process
        being killed right after a graceful drain acknowledges."""
        if self.disk is None:
            return
        try:
            fd = os.open(self.disk.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- job registry --------------------------------------------------

    def register(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._live += 1
        self._evict_history()

    def job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def finished(self, job: Job) -> None:
        """Note a terminal state; may evict the oldest finished jobs."""
        self._live -= 1
        self._evict_history()

    def _evict_history(self) -> None:
        # Never evict live jobs: a queued job must stay pollable no
        # matter how deep the backlog.  Records are in insertion order,
        # so scanning from the front drops the oldest finished first.
        excess = len(self._jobs) - self._live - self.history
        if excess <= 0:
            return
        for job_id in [jid for jid, job in self._jobs.items()
                       if job.state in (DONE, FAILED, REJECTED)][:excess]:
            del self._jobs[job_id]

    # -- accounting ----------------------------------------------------

    @property
    def jobs_tracked(self) -> int:
        return len(self._jobs)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
