"""The sharded worker pool: where admitted jobs actually run.

Jobs are sharded by idempotency key onto N shards, each a private
:class:`~concurrent.futures.ProcessPoolExecutor` fed from a per-shard
priority queue (a heap ordered by ``(priority, arrival)``).  Sharding by
*content key* — not round-robin — means concurrent duplicates always
land on the same shard, which is what makes single-flight dedup a local
decision: the first submission of a key becomes the *primary*, later
ones attach as *followers* and complete with the primary's result,
having cost zero queue slots and zero simulations.

Backpressure is per shard and enforced at admission: a shard whose
queue depth (heap + in-flight) has reached ``queue_limit`` rejects new
primaries with a structured 429-style payload instead of queueing
unboundedly.  Draining rejects everything with a 503-style payload.

Failures reuse the sweep runner's crash-tolerance vocabulary: each
attempt runs under the worker-side SIGALRM deadline
(:func:`~repro.sweep.runner.with_deadline` via ``execute_request``),
failed attempts retry with exponential backoff — on a fresh future, and
on a fresh *pool* if the old one broke — and a cell that keeps failing
completes as a structured error payload, never a hung request.

A :class:`ShardWatchdog` (the service-side sibling of
``repro.resilience``'s in-simulation :class:`~repro.resilience.
invariants.Watchdog`) covers the one failure the deadline cannot: a
worker wedged *outside* SIGALRM's reach (stuck in a syscall, or on a
platform without it).  It periodically checks every shard's oldest
in-flight job; one older than ``stuck_after`` seconds gets its shard's
processes terminated and replaced, and fails with a structured
diagnostic in the same shape as the resilience layer's.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import (DONE, FAILED, QUEUED, RUNNING, Job,
                              execute_request)
from repro.serve.store import ResultStore

NoteFn = Callable[[str], None]


class _Shard:
    """One shard: a priority heap feeding a private process pool."""

    __slots__ = ("index", "workers", "pool", "heap", "inflight",
                 "executed", "failed", "recycles")

    def __init__(self, index: int, workers: int) -> None:
        self.index = index
        self.workers = workers
        self.pool: Optional[ProcessPoolExecutor] = None
        # (priority, arrival, Job) — heapq keeps FIFO within a priority.
        self.heap: List[Tuple[int, int, Job]] = []
        # job.id -> (job, started_monotonic)
        self.inflight: Dict[str, Tuple[Job, float]] = {}
        self.executed = 0
        self.failed = 0
        self.recycles = 0

    @property
    def depth(self) -> int:
        return len(self.heap) + len(self.inflight)

    def executor(self) -> ProcessPoolExecutor:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(max_workers=self.workers)
        return self.pool

    def recycle(self) -> None:
        """Terminate this shard's worker processes and start over."""
        pool, self.pool = self.pool, None
        self.recycles += 1
        if pool is None:
            return
        # Private API, best-effort: shutdown() alone would wait forever
        # on the very process we believe is wedged.
        try:
            for proc in list(getattr(pool, "_processes", {}).values()):
                proc.terminate()
        except Exception:
            pass
        pool.shutdown(wait=False, cancel_futures=True)


def _failure_payload(job: Job, exc: BaseException, attempts: int) -> Dict:
    """Structured error record, sweep-runner shaped."""
    return {
        "job": job.id,
        "kind": job.kind,
        "key": job.key,
        "type": type(exc).__name__,
        "message": str(exc),
        "timeout": type(exc).__name__ == "JobTimeout",
        "attempts": attempts,
    }


class StuckShardError(RuntimeError):
    """A shard's in-flight job exceeded the watchdog budget; carries a
    JSON-safe ``diagnostic`` like the resilience layer's errors."""

    def __init__(self, message: str, diagnostic: Dict) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic


class ShardedWorkerPool:
    """N process-pool shards + admission control + single-flight dedup.

    All methods are event-loop-thread only.  ``on_complete`` is called
    for every job (primaries *and* followers) as it reaches a terminal
    state — the service layer uses it to fire done-events and metrics.
    """

    def __init__(self, store: ResultStore, metrics: MetricsRegistry,
                 shards: int = 2, shard_workers: int = 1,
                 queue_limit: int = 64,
                 timeout: Optional[float] = None,
                 retries: int = 1, backoff: float = 0.5,
                 stuck_after: Optional[float] = None,
                 on_note: Optional[NoteFn] = None,
                 on_complete: Optional[Callable[[Job], None]] = None
                 ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.store = store
        self.metrics = metrics
        self.shards = [_Shard(i, shard_workers) for i in range(shards)]
        self.queue_limit = queue_limit
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.stuck_after = stuck_after
        self.on_note = on_note
        self.on_complete = on_complete
        self.draining = False
        # (monotonic time, reason) of the most recent shard incident —
        # a watchdog recycle or a broken-pool replacement.  healthz()
        # reports "degraded" while an incident is recent, so the fleet
        # coordinator can tell a sick node from a dead one.
        self.last_incident: Optional[Tuple[float, str]] = None
        self._arrival = itertools.count()
        self._primaries: Dict[str, Job] = {}     # key -> executing job
        self._followers: Dict[str, List[Job]] = {}
        self._tasks: "set[asyncio.Task]" = set()
        self._watchdog_task: Optional[asyncio.Task] = None

    def _note(self, msg: str) -> None:
        if self.on_note is not None:
            self.on_note(msg)

    # -- topology ------------------------------------------------------

    def shard_of(self, key: str) -> int:
        """Stable key → shard mapping (leading 64 bits of the hash)."""
        return int(key[:16], 16) % len(self.shards)

    def queue_depths(self) -> List[int]:
        return [shard.depth for shard in self.shards]

    def occupancy(self) -> List[Dict]:
        """Per-shard occupancy for ``/v1/metrics``."""
        return [{"shard": shard.index,
                 "queued": len(shard.heap),
                 "inflight": len(shard.inflight),
                 "executed": shard.executed,
                 "failed": shard.failed,
                 "recycles": shard.recycles}
                for shard in self.shards]

    @property
    def idle(self) -> bool:
        return all(shard.depth == 0 for shard in self.shards)

    # -- admission + submission ---------------------------------------

    def try_admit(self, job: Job) -> Optional[Dict]:
        """None if ``job`` may enter, else the structured rejection.

        Draining beats everything; duplicates of an in-flight key are
        always admitted (they consume no capacity); otherwise the target
        shard's queue depth decides.
        """
        if self.draining:
            return {"error": "draining", "status": 503,
                    "message": "service is draining; not admitting jobs"}
        if job.key in self._primaries:
            return None
        shard = self.shards[self.shard_of(job.key)]
        if shard.depth >= self.queue_limit:
            return {"error": "queue-full", "status": 429,
                    "message": f"shard {shard.index} is at its queue "
                               f"limit ({self.queue_limit})",
                    "shard": shard.index,
                    "depth": shard.depth,
                    "limit": self.queue_limit,
                    "retry_after_s": 1.0}
        return None

    def submit(self, job: Job) -> None:
        """Queue an admitted job (or attach it to its running twin)."""
        primary = self._primaries.get(job.key)
        if primary is not None:
            job.deduped = True
            job.shard = primary.shard
            job.state = primary.state if primary.state == RUNNING \
                else QUEUED
            self._followers.setdefault(job.key, []).append(job)
            self.metrics.inc("jobs_deduped")
            return
        shard = self.shards[self.shard_of(job.key)]
        job.shard = shard.index
        job.state = QUEUED
        self._primaries[job.key] = job
        heapq.heappush(shard.heap,
                       (job.priority, next(self._arrival), job))
        self._pump(shard)

    # -- execution -----------------------------------------------------

    def _pump(self, shard: _Shard) -> None:
        while shard.heap and len(shard.inflight) < shard.workers:
            _, _, job = heapq.heappop(shard.heap)
            job.state = RUNNING
            for follower in self._followers.get(job.key, ()):
                follower.state = RUNNING
            shard.inflight[job.id] = (job, time.monotonic())
            task = asyncio.get_running_loop().create_task(
                self._run_job(shard, job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_job(self, shard: _Shard, job: Job) -> None:
        loop = asyncio.get_running_loop()
        queue_wait_ms = int(
            (time.monotonic() - job.submitted_at) * 1000)
        self.metrics.observe("queue_wait_ms", max(0, queue_wait_ms))
        error: Optional[Dict] = None
        payload: Optional[Dict] = None
        attempt = 0
        while attempt <= self.retries:
            attempt += 1
            job.attempts = attempt
            if attempt > 1:
                delay = self.backoff * (2 ** (attempt - 2))
                self._note(f"serve: retrying {job.id} "
                           f"(attempt {attempt}, backoff {delay:.1f}s)")
                await asyncio.sleep(delay)
            try:
                payload = await loop.run_in_executor(
                    shard.executor(), execute_request, job.spec,
                    self.timeout, self.store.cache_dir())
                error = None
                break
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                if job.id not in shard.inflight:
                    # The watchdog already failed this job and recycled
                    # the shard; this is the corpse's broken future.
                    return
                error = _failure_payload(job, exc, attempt)
                self._note(f"serve: {job.id} failed "
                           f"({error['type']}: {error['message']})")
                # A broken pool poisons every later submit; recycle it
                # so the retry (or the next job) gets live processes.
                if shard.pool is not None and getattr(
                        shard.pool, "_broken", False):
                    shard.recycle()
                    self.metrics.inc("pool_replacements")
                    self.last_incident = (time.monotonic(),
                                          "broken-pool")
        self._finish(shard, job, payload, error)

    def _finish(self, shard: _Shard, job: Job,
                payload: Optional[Dict], error: Optional[Dict]) -> None:
        if job.id not in shard.inflight:
            return  # watchdog got there first
        del shard.inflight[job.id]
        if payload is not None:
            self.store.put(job.key, payload)
            shard.executed += 1
            self.metrics.inc("jobs_executed")
            if payload.get("kind") == "leak":
                self.metrics.inc("leak_jobs_executed")
                self.metrics.inc("leak_lines_found",
                                 sum(payload["leaked_lines"].values()))
            elif payload.get("kind") == "synth":
                self.metrics.inc("synth_jobs_executed")
                self.metrics.inc("synth_programs_enumerated",
                                 payload.get("enumerated", 0))
                self.metrics.inc("synth_distinguishers_found",
                                 payload.get("distinct", 0))
        else:
            shard.failed += 1
            self.metrics.inc("jobs_failed")
        self._complete_key(job.key, payload, error)
        self._pump(shard)

    def _complete_key(self, key: str, payload: Optional[Dict],
                      error: Optional[Dict]) -> None:
        jobs = [self._primaries.pop(key)] if key in self._primaries else []
        jobs.extend(self._followers.pop(key, ()))
        now = time.monotonic()
        for job in jobs:
            job.result = payload
            job.error = error
            job.state = DONE if payload is not None else FAILED
            job.finished_at = now
            latency_ms = int((now - job.submitted_at) * 1000)
            self.metrics.observe("job_latency_ms", max(0, latency_ms))
            self.store.finished(job)
            if self.on_complete is not None:
                self.on_complete(job)

    # -- the stuck-shard watchdog -------------------------------------

    def start_watchdog(self) -> None:
        if self.stuck_after is None or self._watchdog_task is not None:
            return
        self._watchdog_task = asyncio.get_running_loop().create_task(
            self._watchdog())

    async def _watchdog(self) -> None:
        period = max(0.05, min(self.stuck_after / 4, 5.0))
        while True:
            await asyncio.sleep(period)
            now = time.monotonic()
            for shard in self.shards:
                stuck = [(job, started)
                         for job, started in shard.inflight.values()
                         if now - started > self.stuck_after]
                if not stuck:
                    continue
                self._recycle_shard(shard, stuck, now)

    def _recycle_shard(self, shard: _Shard,
                       stuck: List[Tuple[Job, float]], now: float) -> None:
        names = [job.id for job, _ in stuck]
        self._note(f"serve: watchdog recycling shard {shard.index} "
                   f"(stuck: {', '.join(names)})")
        self.metrics.inc("shard_recycles")
        self.last_incident = (now, "watchdog-recycle")
        diagnostic = {
            "shard": shard.index,
            "stuck_after_s": self.stuck_after,
            "inflight": [{"job": job.id, "kind": job.kind,
                          "key": job.key,
                          "running_s": round(now - started, 3)}
                         for job, started in stuck],
            "occupancy": self.occupancy()[shard.index],
        }
        shard.recycle()
        for job, started in stuck:
            if job.id not in shard.inflight:
                continue
            del shard.inflight[job.id]
            shard.failed += 1
            self.metrics.inc("jobs_failed")
            exc = StuckShardError(
                f"{job.id} ran {now - started:.1f}s on shard "
                f"{shard.index} (stuck_after={self.stuck_after:g}s); "
                f"worker terminated", diagnostic)
            error = _failure_payload(job, exc, job.attempts)
            error["diagnostic"] = diagnostic
            self._complete_key(job.key, None, error)
        # Anything that was merely queued behind the corpse continues
        # on the fresh pool.
        self._pump(shard)

    # -- drain / shutdown ---------------------------------------------

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, finish in-flight and queued work, shut the
        pools down.  Returns True if everything finished in time."""
        self.draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.idle:
            if deadline is not None and time.monotonic() > deadline:
                break
            await asyncio.sleep(0.02)
        drained = self.idle
        await self.shutdown(cancel=not drained)
        return drained

    async def shutdown(self, cancel: bool = False) -> None:
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            self._watchdog_task = None
        if cancel:
            for task in list(self._tasks):
                task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        for shard in self.shards:
            if shard.pool is not None:
                shard.pool.shutdown(wait=not cancel,
                                    cancel_futures=cancel)
                shard.pool = None
