"""Reporting helpers for the reproduction's tables and figures."""

from repro.analysis.charts import (bar_chart, figure10_chart,
                                   stacked_bar_chart)
from repro.analysis.report import (CHARACTERIZATION_HEADERS,
                                   characterization_row, figure9_table,
                                   figure10_table, format_table,
                                   summarize_suite)

__all__ = ["bar_chart", "stacked_bar_chart", "figure10_chart",
           "format_table", "characterization_row",
           "CHARACTERIZATION_HEADERS", "figure9_table", "figure10_table",
           "summarize_suite"]
