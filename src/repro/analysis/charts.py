"""ASCII charts for the reproduction's figures.

The paper's Figures 9 and 10 are bar charts; these helpers render the
same data as text so the benchmark reports are self-contained (no
plotting dependencies).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

#: Fill characters for stacked series, in order.
_FILLS = ("#", "=", ".")


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: str = "", width: int = 50, unit: str = "",
              baseline: float = None) -> str:
    """Horizontal bar chart; an optional baseline draws a ``|`` marker
    (used for the x86=1.0 line of Figure 10)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return title
    label_width = max(len(label) for label in labels)
    peak = max(max(values), baseline or 0.0)
    if peak <= 0:
        peak = 1.0
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak))
        bar = "#" * filled
        if baseline is not None:
            marker = int(round(width * baseline / peak))
            if marker >= len(bar):
                bar = bar + " " * (marker - len(bar)) + "|"
            else:
                bar = bar[:marker] + "|" + bar[marker + 1:]
        lines.append(f"{label.ljust(label_width)} |{bar}"
                     f"  {value:.3f}{unit}")
    return "\n".join(lines)


def stacked_bar_chart(labels: Sequence[str],
                      series: Mapping[str, Sequence[float]],
                      title: str = "", width: int = 50,
                      total: float = 100.0) -> str:
    """Horizontal stacked bars (e.g. ROB/LQ/SQ stall shares).

    ``series`` maps series name -> per-label values; stacks are scaled
    so ``total`` spans the full width.
    """
    names = list(series)
    if len(names) > len(_FILLS):
        raise ValueError(f"at most {len(_FILLS)} series supported")
    for name in names:
        if len(series[name]) != len(labels):
            raise ValueError(f"series {name!r} does not align with labels")
    label_width = max((len(label) for label in labels), default=0)
    lines = [title] if title else []
    legend = "  ".join(f"{fill}={name}"
                       for fill, name in zip(_FILLS, names))
    lines.append(f"{'':{label_width}}  [{legend}]")
    for row, label in enumerate(labels):
        bar = ""
        shown = []
        for fill, name in zip(_FILLS, names):
            value = series[name][row]
            chars = int(round(width * value / total))
            bar += fill * chars
            shown.append(f"{name}={value:.1f}")
        bar = bar[:width].ljust(width)
        lines.append(f"{label.ljust(label_width)} |{bar}| "
                     + " ".join(shown))
    return "\n".join(lines)


def figure10_chart(norms: Dict[str, Dict[str, float]],
                   policies: Sequence[str], title: str = "") -> str:
    """One bar group per benchmark: normalized times with the x86=1.0
    baseline marker."""
    blocks: List[str] = [title] if title else []
    for name, by_policy in norms.items():
        values = [by_policy[p] for p in policies]
        labels = [f"{name}:{p}" for p in policies]
        blocks.append(bar_chart(labels, values, width=44, unit="x",
                                baseline=1.0))
    return "\n".join(blocks)
