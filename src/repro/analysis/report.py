"""Table/figure formatting for the reproduction reports.

Produces fixed-width text tables in the spirit of the paper's tables
and figure data: Table IV characterization rows, Figure 9 stall
breakdowns, and Figure 10 normalized execution times, each with the
paper-reported values alongside the measured ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.policies import POLICY_ORDER
from repro.sim.stats import CoreStats, SystemStats
from repro.workloads.runner import BenchmarkResult, geomean, normalized_times
from repro.workloads.tableiv import FIGURE10_GEOMEAN, PaperRow


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Left-align the first column, right-align the rest."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.3f}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(cells):
        parts = [row[0].ljust(widths[0])]
        parts += [cell.rjust(width)
                  for cell, width in zip(row[1:], widths[1:])]
        lines.append("  ".join(parts))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def characterization_row(name: str, stats: CoreStats,
                         paper: Optional[PaperRow]) -> List[object]:
    """One Table IV row: measured vs paper for the five key columns."""
    row: List[object] = [
        name,
        stats.retired_instructions,
        round(stats.loads_pct, 2),
        round(stats.forwarded_pct, 2),
        round(stats.gate_stalls_pct, 3),
        round(stats.avg_gate_stall_cycles, 1),
        round(stats.reexecuted_pct, 3),
    ]
    if paper is not None:
        row += [paper.loads_pct, paper.forwarded_pct,
                paper.gate_stalls_pct, paper.avg_stall_cycles,
                paper.reexecuted_pct]
    return row


CHARACTERIZATION_HEADERS = [
    "benchmark", "instrs", "loads%", "fwd%", "gate%", "gate-cyc",
    "reexec%", "p:loads%", "p:fwd%", "p:gate%", "p:gate-cyc", "p:reexec%"]


def figure10_table(results: Dict[str, Dict[str, BenchmarkResult]],
                   suite: str) -> str:
    """Normalized execution time per benchmark + geomean vs the paper."""
    headers = ["benchmark"] + POLICY_ORDER[1:]
    rows = []
    per_policy: Dict[str, List[float]] = {p: [] for p in POLICY_ORDER[1:]}
    for name, sweep in results.items():
        norm = normalized_times(sweep)
        rows.append([name] + [round(norm[p], 3) for p in POLICY_ORDER[1:]])
        for policy in POLICY_ORDER[1:]:
            per_policy[policy].append(norm[policy])
    rows.append(["geomean"] + [round(geomean(per_policy[p]), 3)
                               for p in POLICY_ORDER[1:]])
    paper = FIGURE10_GEOMEAN[suite]
    rows.append(["paper-geomean"] + [paper[p] for p in POLICY_ORDER[1:]])
    return format_table(
        headers, rows,
        title=f"Figure 10 ({suite}): execution time normalized to x86")


def figure9_table(results: Dict[str, Dict[str, BenchmarkResult]],
                  suite: str) -> str:
    """Dispatch-stall percentage (ROB / LQ / SQ-SB) per configuration."""
    headers = ["benchmark"] + [f"{p}:{s}" for p in
                               ("x86", "NoSpec", "SLFSpec", "SoS", "key")
                               for s in ("ROB", "LQ", "SQ")]
    rows = []
    for name, sweep in results.items():
        row: List[object] = [name]
        for policy in POLICY_ORDER:
            pct = sweep[policy].stats.total.stall_pct
            row += [round(pct["ROB"], 1), round(pct["LQ"], 1),
                    round(pct["SQ/SB"], 1)]
        rows.append(row)
    return format_table(
        headers, rows,
        title=f"Figure 9 ({suite}): dispatch-stall % by full structure")


def summarize_suite(results: Dict[str, Dict[str, BenchmarkResult]],
                    suite: str) -> Dict[str, float]:
    """Geomean normalized time per policy for one suite."""
    out: Dict[str, float] = {}
    for policy in POLICY_ORDER[1:]:
        ratios = [normalized_times(sweep)[policy]
                  for sweep in results.values()]
        out[policy] = geomean(ratios)
    return out


def top_stalls(report, stats: SystemStats, top: int = 5) -> str:
    """Text summary of where the cycles went in one observed run.

    ``report`` is an :class:`repro.obs.session.ObsReport`; the output
    lists the longest gate-closed intervals (keyed by the locking
    store), the stall/drain/window histogram summaries, and squash
    counts — the ``top-stalls`` section of ``repro trace`` and the
    ``--obs`` flags.
    """
    lines = [f"top stalls ({report.policy}, "
             f"{report.end_cycle} cycles):"]

    worst = report.top_gate_intervals(top)
    if worst:
        lines.append(f"  longest gate-closed intervals (of "
                     f"{report.gate_interval_count()}):")
        for interval in worst:
            lines.append(
                f"    core {interval.core_id}  key=0x{interval.key:x}  "
                f"[{interval.start}, {interval.end})  "
                f"{interval.cycles} cycles  "
                f"opened by {interval.open_reason}")
    else:
        lines.append("  no gate-closed intervals")

    for cid, frac in sorted(report.gate_closed_fraction().items()):
        if frac:
            lines.append(f"  core {cid}: gate closed "
                         f"{100.0 * frac:.2f}% of cycles")

    hist_rows = []
    for name, hist in report.histograms.items():
        if hist.count:
            s = hist.summary()
            hist_rows.append([name, s["count"], s["mean"], s["p50"],
                              s["p90"], s["p99"], s["max"]])
    if hist_rows:
        lines.append(format_table(
            ["histogram (cycles)", "n", "mean", "p50", "p90", "p99",
             "max"], hist_rows))

    episodes = report.counters.get("squash_episodes", {})
    flushed = report.counters.get("squash_flushed", {})
    for reason in sorted(episodes):
        lines.append(f"  squash {reason}: {episodes[reason]} episodes, "
                     f"{flushed.get(reason, 0)} instructions flushed")

    total = stats.total
    if total.gate_stall_events:
        lines.append(
            f"  gate stalls: {total.gate_stall_events} events, "
            f"{total.gate_stall_cycles} cycles "
            f"(lock total {total.gate_lock_cycles})")
    return "\n".join(lines)
