"""Deterministic fault injection.

A :class:`FaultPlan` perturbs a simulation at four well-defined hook
points, all of which are *timing-only* — the coherence protocol and the
functional value layer already tolerate every injected event, so a
faulted run may be slower or squash more, but can never produce an
outcome the consistency model disallows:

``noc``     extra latency on interconnect messages (jitter).  Safe
            because the directory is blocking and every controller
            handler tolerates stale/reordered arrivals.
``evict``   forced evictions of random lines from random private
            hierarchies.  Safe because an eviction is an event the
            model already handles: speculative loads on the line are
            squashed, M/E lines write back.
``squash``  spurious pipeline squashes at a random live ROB entry.
            Safe because squash/re-execute is the pipeline's normal
            recovery path; only ``reexecuted_instructions`` grows.
``sb``      extra delay on owned-line SB→L1 store commits.  Completion
            order is kept monotone (TSO requires in-order memory-order
            insertion), so only the drain is slower.

Determinism: every mechanism draws from its own seeded stream, so runs
with the same ``(spec, seed)`` are byte-identical, and disabling one
mechanism does not shift the choices of another.  Zero overhead: a plan
whose spec is all-zero installs nothing — the hook attributes stay
``None`` and each hook site pays one attribute load + ``is not None``
(the probe-bus contract).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System


@dataclass(frozen=True)
class FaultSpec:
    """What to inject, and how hard.  All-zero (the default) disables
    every mechanism."""

    noc_jitter: int = 0          # max extra cycles added to one message
    noc_jitter_prob: float = 0.0  # fraction of messages jittered
    evict_period: int = 0        # force one private eviction every N cycles
    squash_period: int = 0       # force one spurious squash every N cycles
    sb_delay: int = 0            # max extra cycles on an owned SB commit
    sb_delay_prob: float = 0.0   # fraction of commits delayed

    @property
    def enabled(self) -> bool:
        return bool((self.noc_jitter and self.noc_jitter_prob > 0)
                    or self.evict_period > 0
                    or self.squash_period > 0
                    or (self.sb_delay and self.sb_delay_prob > 0))

    def to_dict(self) -> Dict:
        return asdict(self)


#: An aggressive default for litmus-scale runs (a few thousand cycles):
#: every mechanism fires several times per run.
DEFAULT_CHAOS = FaultSpec(noc_jitter=8, noc_jitter_prob=0.25,
                          evict_period=300, squash_period=900,
                          sb_delay=6, sb_delay_prob=0.25)


class FaultPlan:
    """A seeded, single-use injection schedule for one system run.

    Construct with a :class:`FaultSpec` and a seed, pass as
    ``System(..., faults=plan)`` (or ``run_once(..., faults=plan)``).
    After the run, :attr:`injected` holds per-mechanism counts for
    diagnostics.
    """

    def __init__(self, spec: FaultSpec = DEFAULT_CHAOS, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        # One independent stream per mechanism: string seeding hashes the
        # bytes, so the streams are unrelated and each is stable across
        # runs and Python versions.
        self._rng_noc = random.Random(f"{seed}:noc")
        self._rng_evict = random.Random(f"{seed}:evict")
        self._rng_squash = random.Random(f"{seed}:squash")
        self._rng_sb = random.Random(f"{seed}:sb")
        self.injected: Dict[str, int] = {"noc": 0, "evict": 0,
                                         "squash": 0, "sb": 0}
        self._system: "System" = None
        self._installed = False

    # ------------------------------------------------------------------

    def install(self, system: "System") -> None:
        """Wire the enabled mechanisms into ``system``.  A plan is
        single-use: its RNG streams advance with the run."""
        if self._installed:
            raise RuntimeError("a FaultPlan is single-use; make a new one "
                               "per run (its RNG streams are consumed)")
        self._installed = True
        spec = self.spec
        if not spec.enabled:
            return
        self._system = system
        if spec.noc_jitter and spec.noc_jitter_prob > 0:
            system.memory.network.fault_delay = self._noc_extra
        if spec.sb_delay and spec.sb_delay_prob > 0:
            for ctrl in system.memory.controllers:
                ctrl.fault_store_delay = self._sb_extra
        if spec.evict_period > 0:
            system.engine.schedule(spec.evict_period, self._evict_tick)
        if spec.squash_period > 0:
            system.engine.schedule(spec.squash_period, self._squash_tick)

    def install_restored(self, system: "System") -> None:
        """Re-attach to a system rebuilt from a snapshot
        (:func:`repro.snapshot.restore`): wire the latency/commit hooks
        but do *not* schedule the periodic ticks — the snapshot's queue
        residue already carries the pending tick events, and scheduling
        fresh ones would double the metronome.  The caller is expected
        to have reinstalled the RNG stream states and injected counts
        captured with the snapshot."""
        if self._installed:
            raise RuntimeError("a FaultPlan is single-use; make a new one "
                               "per restore")
        self._installed = True
        system.faults = self
        spec = self.spec
        if not spec.enabled:
            return
        self._system = system
        if spec.noc_jitter and spec.noc_jitter_prob > 0:
            system.memory.network.fault_delay = self._noc_extra
        if spec.sb_delay and spec.sb_delay_prob > 0:
            for ctrl in system.memory.controllers:
                ctrl.fault_store_delay = self._sb_extra

    # -- hook callbacks -------------------------------------------------

    def _noc_extra(self, msg_class: str) -> int:
        rng = self._rng_noc
        if rng.random() >= self.spec.noc_jitter_prob:
            return 0
        self.injected["noc"] += 1
        return rng.randrange(1, self.spec.noc_jitter + 1)

    def _sb_extra(self) -> int:
        rng = self._rng_sb
        if rng.random() >= self.spec.sb_delay_prob:
            return 0
        self.injected["sb"] += 1
        return rng.randrange(1, self.spec.sb_delay + 1)

    def _evict_tick(self) -> None:
        system = self._system
        if system.done or system.engine.stopped:
            return
        rng = self._rng_evict
        controllers = system.memory.controllers
        ctrl = controllers[rng.randrange(len(controllers))]
        lines = list(ctrl.state)  # insertion order: deterministic
        if lines and ctrl.force_evict(lines[rng.randrange(len(lines))]):
            self.injected["evict"] += 1
        system.engine.schedule(self.spec.evict_period, self._evict_tick)

    def _squash_tick(self) -> None:
        system = self._system
        if system.done or system.engine.stopped:
            return
        rng = self._rng_squash
        cores = system.cores
        core = cores[rng.randrange(len(cores))]
        if not core.finished and len(core.rob):
            seqs = [entry.seq for entry in core.rob]
            core._squash(seqs[rng.randrange(len(seqs))], "fault")
            self.injected["squash"] += 1
        system.engine.schedule(self.spec.squash_period, self._squash_tick)

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "spec": self.spec.to_dict(),
                "injected": dict(self.injected)}
