"""Runtime invariant enforcement.

:func:`check_system` asserts, between events, the correctness conditions
the rest of the model merely *assumes*:

* **gate-key liveness** — a closed retire gate's key names a live (not
  yet written) SB entry; a gate locked by a dead key would stall the
  core forever (370-SLFSoS-key's unlock would never arrive).
* **SB FIFO** — SQ/SB entries are in ascending program order and the
  retired entries form a prefix (TSO's in-order memory-order insertion
  rests on this).
* **LQ age order** — load-queue entries are in ascending program order
  (the squash and snoop scans assume it).
* **MESI SWMR** — single-writer/multiple-reader: a line held M/E by one
  private hierarchy is held by no other.  Checked between events, where
  the protocol's transient states have settled into the ``state`` maps.

:class:`Watchdog` runs those checks periodically (optionally per event)
and additionally watches *forward progress*: if no core retires an
instruction for ``stall_limit`` cycles while cores are unfinished, it
raises a structured :class:`DeadlockError` instead of letting the run
spin (or sit) forever.  Both error types carry a ``diagnostic`` dict —
per-core pipeline snapshots plus engine state — so a failure in a CI
sweep is actionable from the payload alone.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.pipeline import Core
    from repro.sim.system import System


class InvariantViolation(AssertionError):
    """A runtime model invariant does not hold.  ``diagnostic`` is a
    JSON-safe dict with the violated invariant and a system snapshot."""

    def __init__(self, message: str, diagnostic: Dict) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic


class DeadlockError(RuntimeError):
    """No forward progress with live cores.  ``diagnostic`` as above."""

    def __init__(self, message: str, diagnostic: Dict) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic


# ----------------------------------------------------------------------
# Diagnostics
# ----------------------------------------------------------------------

def core_snapshot(core: "Core") -> Dict:
    """A JSON-safe snapshot of one core's pipeline state."""
    gate = getattr(core.policy, "gate", None)
    return {
        "core": core.core_id,
        "finished": core.finished,
        "sleeping": core._sleeping,
        "fetch_idx": core.fetch_idx,
        "trace_len": len(core.trace),
        "retired": core.stats.retired_instructions,
        "rob": len(core.rob),
        "lq": len(core.lq),
        "sb": len(core.sb),
        "ready": len(core.ready),
        "barrier_seq": core.barrier_seq,
        "pending_fences": list(core.pending_fences),
        "txns": sorted(core.controller.txns),
        "txn_queue": len(core.controller.txn_queue),
        "gate_closed": bool(gate is not None and gate.closed),
        "gate_key": None if gate is None else gate.key,
        "rob_head": repr(core.rob.head()),
    }


def system_diagnostic(system: "System", **extra) -> Dict:
    """A JSON-safe snapshot of the whole system, plus ``extra`` fields."""
    diag = {
        "cycle": system.engine.now,
        "policy": system.policy_name,
        "pending_events": system.engine.pending,
        "events_dispatched": system.engine.events_dispatched,
        "unfinished_cores": system._unfinished,
        "cores": [core_snapshot(core) for core in system.cores],
    }
    diag.update(extra)
    return diag


def format_diagnostic(diag: Dict) -> str:
    return json.dumps(diag, indent=2, sort_keys=True, default=repr)


# ----------------------------------------------------------------------
# The checks
# ----------------------------------------------------------------------

def _fail(system: "System", invariant: str, detail: str) -> None:
    raise InvariantViolation(
        f"invariant {invariant!r} violated at cycle {system.engine.now}: "
        f"{detail}",
        system_diagnostic(system, invariant=invariant, detail=detail))


def _check_gate_key(system: "System", core: "Core") -> None:
    gate = getattr(core.policy, "gate", None)
    if gate is None or not gate.closed:
        return
    key = gate.key
    if key is None:
        _fail(system, "gate-key-live",
              f"core {core.core_id}: gate closed with no key")
    slot = key & 0x7FFFFFFF
    if slot >= core.sb.capacity or not core.sb.holds_key(key):
        _fail(system, "gate-key-live",
              f"core {core.core_id}: gate locked by key {key:#x} which "
              f"names no live SB entry (slot {slot}, "
              f"bit {key >> 31}) — the gate would never reopen")


def _check_sb_fifo(system: "System", core: "Core") -> None:
    prev_seq = -1
    seen_unretired = False
    for entry in core.sb:
        if entry.seq <= prev_seq:
            _fail(system, "sb-fifo",
                  f"core {core.core_id}: SB seq {entry.seq} after "
                  f"{prev_seq} — not in program order")
        prev_seq = entry.seq
        if entry.retired and seen_unretired:
            _fail(system, "sb-retired-prefix",
                  f"core {core.core_id}: retired store seq {entry.seq} "
                  f"behind a non-retired one — out-of-order retirement")
        if not entry.retired:
            seen_unretired = True


def _check_lq_order(system: "System", core: "Core") -> None:
    prev_seq = -1
    for entry in core.lq:
        if entry.seq <= prev_seq:
            _fail(system, "lq-age-order",
                  f"core {core.core_id}: LQ seq {entry.seq} after "
                  f"{prev_seq} — ages not monotone")
        prev_seq = entry.seq


def _check_mesi_swmr(system: "System") -> None:
    holders: Dict[int, list] = {}
    for ctrl in system.memory.controllers:
        for line, state in ctrl.state.items():
            holders.setdefault(line, []).append((ctrl.core_id, state))
    for line, entries in holders.items():
        if len(entries) < 2:
            continue
        exclusive = [cid for cid, state in entries if state in ("M", "E")]
        if exclusive:
            _fail(system, "mesi-swmr",
                  f"line {line:#x} held {entries} — core {exclusive[0]} "
                  f"has it M/E while others hold it too")


def check_system(system: "System") -> None:
    """Run every invariant check; raises :class:`InvariantViolation` on
    the first failure.  Intended to run *between* events (the MESI check
    relies on transient protocol state having settled into the
    controllers' stable-state maps)."""
    for core in system.cores:
        _check_gate_key(system, core)
        _check_sb_fifo(system, core)
        _check_lq_order(system, core)
    _check_mesi_swmr(system)


# ----------------------------------------------------------------------
# The watchdog
# ----------------------------------------------------------------------

class Watchdog:
    """Periodic invariant checks + forward-progress detection.

    Install on a :class:`~repro.sim.system.System` before ``run()``:

    >>> wd = Watchdog(period=5_000, stall_limit=200_000)
    >>> wd.install(system)
    >>> system.run()

    Progress is architectural: per-core ``(retired_instructions,
    retired_stores, finished)``.  A run that dispatches events without
    any core retiring anything (a coherence livelock, a wedged gate) is
    *not* progressing and trips the detector just like a drained-queue
    hang would.  With ``per_event=True`` the invariant sweep additionally
    runs after **every** dispatched event (via ``Engine.event_hook``) —
    orders of magnitude slower; for tests.
    """

    def __init__(self, period: int = 5_000, stall_limit: int = 200_000,
                 invariants: bool = True, per_event: bool = False) -> None:
        if period < 1:
            raise ValueError("watchdog period must be >= 1 cycle")
        self.period = period
        self.stall_limit = stall_limit
        self.invariants = invariants
        self.per_event = per_event
        self.checks_run = 0
        self._system: Optional["System"] = None
        self._last_snapshot = None
        self._last_progress_at = 0

    def install(self, system: "System") -> None:
        if self._system is not None:
            raise RuntimeError("watchdog already installed")
        self._system = system
        self._last_snapshot = self._progress_snapshot()
        self._last_progress_at = system.engine.now
        if self.per_event:
            system.engine.event_hook = self._event_check
        system.engine.schedule(self.period, self._tick)

    def _progress_snapshot(self) -> tuple:
        return tuple((core.stats.retired_instructions,
                      core.stats.retired_stores, core.finished)
                     for core in self._system.cores)

    def _event_check(self) -> None:
        if not self._system.done:
            self.checks_run += 1
            check_system(self._system)

    def _tick(self) -> None:
        system = self._system
        if system.done or system.engine.stopped:
            return  # run is over; stop rescheduling
        if self.invariants:
            self.checks_run += 1
            check_system(system)
        snapshot = self._progress_snapshot()
        if snapshot != self._last_snapshot:
            self._last_snapshot = snapshot
            self._last_progress_at = system.engine.now
        else:
            stalled = system.engine.now - self._last_progress_at
            if stalled >= self.stall_limit:
                raise DeadlockError(
                    f"no forward progress for {stalled} cycles at cycle "
                    f"{system.engine.now} with {system._unfinished} "
                    f"unfinished core(s) (policy={system.policy_name})",
                    system_diagnostic(system, stalled_for=stalled,
                                      stall_limit=self.stall_limit))
        system.engine.schedule(self.period, self._tick)
