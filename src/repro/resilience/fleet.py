"""Fleet-level chaos: node kills, dropped heartbeats, partitions.

Where :mod:`repro.resilience.faults` perturbs one *simulation*, this
module perturbs the *fleet around it* — and the invariant under test is
the distributed analogue of the chaos gate's: faults may change
**where and when** a job runs (requeues, re-registrations, replica
repair), never **what it returns**.  Every result produced under fleet
chaos must be byte-identical to a direct in-process execution of the
same spec.

Three mechanisms:

``node-kill``        SIGKILL a live worker subprocess mid-batch (done
                     by the harness, since only it owns the PIDs).
                     Recovery path: heartbeat timeout → dead node →
                     dispatch tasks requeue onto survivors.
``heartbeat-drop``   the coordinator "loses" a fraction of heartbeats
                     from a healthy node.  Enough in a row and a live
                     node is declared dead — the worker's next accepted
                     heartbeat gets a 404 and it re-registers, which
                     also exercises the anti-entropy resync.
``partition``        the coordinator cannot reach one node at all for a
                     window (every RPC raises, heartbeats drop), while
                     the node itself keeps running.  Jobs in flight
                     there fail over; the node rejoins when the window
                     closes.

The drop/partition faults are injected *at the coordinator's edge*
through the duck-typed hooks :meth:`FleetFaultPlan.drop_heartbeat` and
:meth:`FleetFaultPlan.partitioned` (checked by
:class:`~repro.fleet.coordinator.FleetService` before touching the
network), so no real packets are harmed and a run needs no root, no tc,
no iptables.  Streams are seeded per mechanism like
:class:`~repro.resilience.faults.FaultPlan`; the *choices* are
reproducible, though wall-clock interleaving of a real fleet is not —
which is exactly why the invariant is outcome equality, not trace
equality.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import random
import shutil
import signal
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

#: Seconds of grace for a worker subprocess to print its ready line.
WORKER_READY_TIMEOUT = 30.0


@dataclass(frozen=True)
class FleetFaultSpec:
    """What to inject at the coordinator's edge.  All-zero disables
    everything (the plan hooks then cost one float compare each)."""

    heartbeat_drop_p: float = 0.0     # fraction of heartbeats "lost"
    partition_period_s: float = 0.0   # partition one node every N s
    partition_duration_s: float = 0.0  # ... for this long

    @property
    def enabled(self) -> bool:
        return bool(self.heartbeat_drop_p > 0
                    or (self.partition_period_s > 0
                        and self.partition_duration_s > 0))

    def to_dict(self) -> Dict:
        return asdict(self)


#: Aggressive defaults for a gate run of a minute or less: roughly one
#: heartbeat in three vanishes and some node is unreachable for a
#: 2-second window every 6 seconds.
DEFAULT_FLEET_CHAOS = FleetFaultSpec(heartbeat_drop_p=0.35,
                                     partition_period_s=6.0,
                                     partition_duration_s=2.0)


class FleetFaultPlan:
    """Seeded drop/partition schedule, plugged into a
    :class:`~repro.fleet.coordinator.FleetService` as ``faults=``.

    Per-mechanism RNG streams (string-seeded, like
    :class:`~repro.resilience.faults.FaultPlan`) keep choices stable
    for a seed and independent across mechanisms.  ``injected`` counts
    what actually fired, for the report.
    """

    def __init__(self, spec: FleetFaultSpec = DEFAULT_FLEET_CHAOS,
                 seed: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.spec = spec
        self.seed = seed
        self.clock = clock
        self._rng_hb = random.Random(f"{seed}:heartbeat")
        self._rng_part = random.Random(f"{seed}:partition")
        self.injected: Dict[str, int] = {"heartbeat_drop": 0,
                                         "partition": 0}
        self._seen: Set[str] = set()
        self._partitioned_until: Dict[str, float] = {}
        self._next_partition_at: Optional[float] = None

    # -- coordinator-side hooks ----------------------------------------

    def partitioned(self, node_id: str) -> bool:
        """Is the coordinator→``node_id`` path cut right now?"""
        spec = self.spec
        if spec.partition_period_s <= 0 or spec.partition_duration_s <= 0:
            return False
        self._seen.add(node_id)
        now = self.clock()
        if self._next_partition_at is None:
            self._next_partition_at = now + spec.partition_period_s
        if now >= self._next_partition_at and self._seen:
            victims = sorted(self._seen)
            victim = victims[self._rng_part.randrange(len(victims))]
            self._partitioned_until[victim] = (
                now + spec.partition_duration_s)
            self.injected["partition"] += 1
            self._next_partition_at = now + spec.partition_period_s
        until = self._partitioned_until.get(node_id)
        return until is not None and now < until

    def drop_heartbeat(self, node_id: str) -> bool:
        """Should this heartbeat be treated as lost?  A partitioned
        node's heartbeats always are (the cut is bidirectional)."""
        if self.partitioned(node_id):
            return True
        if self.spec.heartbeat_drop_p <= 0:
            return False
        if self._rng_hb.random() < self.spec.heartbeat_drop_p:
            self.injected["heartbeat_drop"] += 1
            return True
        return False

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "spec": self.spec.to_dict(),
                "injected": dict(self.injected)}


# ----------------------------------------------------------------------
# The chaos-gate harness
# ----------------------------------------------------------------------

@dataclass
class FleetChaosReport:
    """Outcome of one :func:`run_fleet_chaos` gate run."""

    ok: bool
    jobs: int
    done: int
    failed: int
    mismatched: int            # results differing from ground truth
    requeues: int
    node_deaths: int
    registrations: int
    killed_workers: int
    injected: Dict[str, int] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    fleet: Dict = field(default_factory=dict)   # final /v1/fleet/status
    results: Dict[str, Dict] = field(default_factory=dict)  # key → payload

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"fleet chaos: {verdict} — {self.done}/{self.jobs} jobs "
            f"done, {self.mismatched} mismatched, "
            f"{self.requeues} requeue(s), {self.node_deaths} node "
            f"death(s), {self.registrations} registration(s), "
            f"{self.killed_workers} worker(s) killed, "
            f"injected {self.injected}, {self.elapsed_s:.1f}s",
        ]
        lines.extend(f"  FAIL: {f}" for f in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return asdict(self)


def _repro_env() -> Dict[str, str]:
    """Subprocess env whose PYTHONPATH can import this very ``repro``."""
    import repro
    pkg_parent = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (pkg_parent if not existing
                         else pkg_parent + os.pathsep + existing)
    return env


def kill_worker(proc) -> None:
    """SIGKILL a harness worker *and its process group* (the sharded
    pool's child processes); missing groups are a no-op."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        try:
            proc.send_signal(signal.SIGKILL)
        except ProcessLookupError:
            pass


async def _spawn_worker(coordinator_url: str, node_id: str,
                        cache_dir: str, heartbeat_interval: float,
                        env: Dict[str, str]) -> Tuple[object, int]:
    """Start one ``repro fleet worker`` subprocess; returns
    ``(process, port)`` once its ready line appears."""
    # Each worker gets its own process group: SIGKILLing just the
    # worker would orphan its ProcessPoolExecutor children, which
    # inherit the stdout pipe and keep ``proc.wait()`` from ever
    # seeing EOF — killing the group takes the whole subtree down.
    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro.cli", "fleet", "worker",
        "--coordinator", coordinator_url, "--node-id", node_id,
        "--port", "0", "--cache-dir", cache_dir,
        "--heartbeat-interval", f"{heartbeat_interval:g}",
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.DEVNULL, env=env,
        start_new_session=True)
    line = await asyncio.wait_for(proc.stdout.readline(),
                                  WORKER_READY_TIMEOUT)
    text = line.decode(errors="replace")
    marker = "listening on http://"
    if marker not in text:
        raise RuntimeError(f"worker {node_id} did not come up: {text!r}")
    port = int(text.rsplit(":", 1)[1])
    return proc, port


def _default_jobs() -> List[Dict]:
    """The litmus battery as job requests — fast, deterministic, and
    with known-good ground truth via direct execution.  The whole
    registry qualifies: every machine in the model zoo (PC included)
    executes locked RMW operations."""
    from repro.litmus.registry import litmus_registry
    return [{"kind": "litmus", "name": name}
            for name in sorted(litmus_registry())]


def run_fleet_chaos(jobs: Optional[List[Dict]] = None,
                    workers: int = 3,
                    seed: int = 0,
                    spec: FleetFaultSpec = DEFAULT_FLEET_CHAOS,
                    kill_worker_after_s: Optional[float] = None,
                    heartbeat_timeout: float = 1.5,
                    heartbeat_interval: float = 0.25,
                    deadline_s: float = 300.0,
                    progress: Optional[Callable[[str], None]] = None
                    ) -> FleetChaosReport:
    """Run a batch through a real multi-process fleet under injected
    faults and verify every result byte-identical to ground truth.

    Topology: an in-process coordinator (so the fault plan's hooks and
    the metrics are directly inspectable) driving ``workers`` real
    ``repro fleet worker`` subprocesses, each with a private cache
    directory — replication, not a shared filesystem, must carry
    results.  ``kill_worker_after_s`` additionally SIGKILLs one worker
    that long after submission (the node-kill mechanism).

    Ground truth per unique key is computed in *this* process with
    :func:`repro.serve.jobs.execute_request`; a fleet that returns
    anything else fails the gate.
    """
    return asyncio.run(_run_fleet_chaos(
        jobs=jobs, workers=workers, seed=seed, spec=spec,
        kill_worker_after_s=kill_worker_after_s,
        heartbeat_timeout=heartbeat_timeout,
        heartbeat_interval=heartbeat_interval,
        deadline_s=deadline_s, progress=progress))


async def _run_fleet_chaos(jobs, workers, seed, spec,
                           kill_worker_after_s, heartbeat_timeout,
                           heartbeat_interval, deadline_s,
                           progress) -> FleetChaosReport:
    from repro.fleet import CoordinatorApi, FleetService
    from repro.serve.jobs import execute_request, parse_request
    from repro.serve.jobs import DONE, FAILED

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    if jobs is None:
        jobs = _default_jobs()
    started = time.monotonic()
    plan = FleetFaultPlan(spec, seed=seed)
    service = FleetService(heartbeat_timeout=heartbeat_timeout,
                           faults=plan, on_note=progress)
    api = CoordinatorApi(service, host="127.0.0.1", port=0)
    await api.start()
    url = f"http://127.0.0.1:{api.port}"
    note(f"fleet chaos: coordinator at {url}, spawning "
         f"{workers} worker(s)")

    env = _repro_env()
    tmp = tempfile.mkdtemp(prefix="fleet-chaos-")
    procs: List[object] = []
    failures: List[str] = []
    killed = 0
    try:
        for i in range(workers):
            proc, _port = await _spawn_worker(
                url, f"chaos-w{i}", os.path.join(tmp, f"w{i}"),
                heartbeat_interval, env)
            procs.append(proc)

        # Wait for everyone to register before loading the fleet.
        t_end = time.monotonic() + WORKER_READY_TIMEOUT
        while (len(service.ring) < workers
               and time.monotonic() < t_end):
            await asyncio.sleep(0.05)
        if len(service.ring) < workers:
            failures.append(f"only {len(service.ring)}/{workers} "
                            f"workers registered")

        records = []
        for request in jobs:
            job = await service.submit_one(request)
            records.append(job)

        async def killer() -> None:
            nonlocal killed
            await asyncio.sleep(kill_worker_after_s)
            # Prefer a victim that holds in-flight dispatches, so the
            # kill provably exercises failover: placement follows
            # content keys (which cover code_version()), so a blind
            # fixed-delay kill can land on a node the ring left idle
            # and requeue nothing.
            victim = None
            t_kill = time.monotonic() + WORKER_READY_TIMEOUT
            while victim is None and time.monotonic() < t_kill:
                for i, proc in enumerate(procs):
                    if proc.returncode is not None:
                        continue
                    node = service.nodes.get(f"chaos-w{i}")
                    if (node is not None and not node.dead
                            and node.inflight):
                        victim = proc
                        break
                else:
                    await asyncio.sleep(0.05)
            if victim is None:
                live = [p for p in procs if p.returncode is None]
                victim = live[len(live) // 2] if live else None
            if victim is not None:
                kill_worker(victim)
                killed += 1
                note(f"fleet chaos: SIGKILLed worker pid {victim.pid}")

        kill_task = None
        if kill_worker_after_s is not None:
            kill_task = asyncio.get_running_loop().create_task(killer())

        t_end = time.monotonic() + deadline_s
        for job in records:
            left = t_end - time.monotonic()
            if left <= 0:
                break
            await service.wait_for(job, left)
        if kill_task is not None:
            kill_task.cancel()

        done = sum(job.state == DONE for job in records)
        failed = sum(job.state == FAILED for job in records)
        unfinished = [job.id for job in records
                      if job.state not in (DONE, FAILED)]
        if unfinished:
            failures.append(f"{len(unfinished)} job(s) never finished: "
                            f"{unfinished[:5]}")
        for job in records:
            if job.state == FAILED:
                failures.append(f"{job.id} failed: {job.error}")

        # Byte-identity against in-process ground truth, per unique key.
        truth: Dict[str, str] = {}
        mismatched = 0
        for request, job in zip(jobs, records):
            if job.state != DONE:
                continue
            if job.key not in truth:
                _kind, parsed_spec, _prio = parse_request(request)
                truth[job.key] = json.dumps(execute_request(parsed_spec),
                                            sort_keys=True)
            got = json.dumps(job.result, sort_keys=True)
            if got != truth[job.key]:
                mismatched += 1
                failures.append(f"{job.id}: fleet result differs from "
                                f"direct execution")
        status = service.fleet_status()
        report = FleetChaosReport(
            ok=not failures,
            jobs=len(records),
            done=done,
            failed=failed,
            mismatched=mismatched,
            requeues=service.metrics.counter("fleet_requeues"),
            node_deaths=service.metrics.counter("node_deaths"),
            registrations=service.metrics.counter("node_registrations"),
            killed_workers=killed,
            injected=dict(plan.injected),
            failures=failures,
            elapsed_s=round(time.monotonic() - started, 2),
            fleet=status,
            results={job.key: job.result for job in records
                     if job.state == DONE},
        )
        note(report.summary())
        return report
    finally:
        for proc in procs:
            if proc.returncode is None:
                kill_worker(proc)
        await asyncio.gather(*(p.wait() for p in procs),
                             return_exceptions=True)
        await api.stop(drain_timeout=5.0)
        shutil.rmtree(tmp, ignore_errors=True)
