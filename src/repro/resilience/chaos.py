"""Chaos-mode conformance gate.

Runs the litmus battery through the cycle-level pipeline *under
injected faults* and diffs the observed outcomes against the abstract
memory models: faults may change **timing**, never **allowed
outcomes**.  Every trial also carries a :class:`~repro.resilience.
invariants.Watchdog`, so a fault that wedges the pipeline surfaces as a
structured error payload instead of a hang.

This is the adversarial version of the conformance tests in
``tests/integration/test_pipeline_conformance.py`` (in the spirit of
validating an operational implementation against an axiomatic oracle):
the allowed sets come from :func:`repro.litmus.axiomatic.
enumerate_axiomatic` where the program is expressible there, falling
back to the operational enumerator (the two are cross-checked equal by
the litmus test suite).

CLI: ``repro chaos --seed 0 --trials 25`` (exit 1 on any violation or
error) — the CI smoke gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.core.policies import POLICY_ORDER
from repro.litmus.pipeline_runner import POLICY_MODEL, run_once
from repro.litmus.tests import ALL_CASES, LitmusCase
from repro.resilience.faults import DEFAULT_CHAOS, FaultPlan, FaultSpec
from repro.resilience.invariants import Watchdog
from repro.sim.config import SystemConfig

ProgressFn = Callable[[str], None]


@dataclass
class ChaosCell:
    """One (litmus case, policy) cell of the chaos grid."""

    case: str
    policy: str
    trials: int
    outcomes: int                      # distinct outcomes observed
    violations: List[Dict] = field(default_factory=list)
    errors: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {"case": self.case, "policy": self.policy,
                "trials": self.trials, "outcomes": self.outcomes,
                "violations": list(self.violations),
                "errors": list(self.errors)}


@dataclass
class ChaosReport:
    """Aggregate result of a :func:`run_chaos` sweep."""

    seed: int
    trials: int
    spec: FaultSpec
    cells: List[ChaosCell] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)

    @property
    def violations(self) -> List[Dict]:
        return [v for cell in self.cells for v in cell.violations]

    @property
    def errors(self) -> List[Dict]:
        return [e for cell in self.cells for e in cell.errors]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def summary(self) -> str:
        lines = [f"chaos: seed={self.seed} trials={self.trials} "
                 f"cells={len(self.cells)} injected={self.injected}"]
        for cell in self.cells:
            status = "ok"
            if cell.violations:
                status = f"{len(cell.violations)} VIOLATION(S)"
            elif cell.errors:
                status = f"{len(cell.errors)} error(s)"
            lines.append(f"  {cell.case:12s} {cell.policy:16s} "
                         f"{cell.outcomes} outcome(s)  {status}")
        verdict = ("all outcomes allowed by the axiomatic models"
                   if self.ok else
                   f"{len(self.violations)} violation(s), "
                   f"{len(self.errors)} error(s)")
        lines.append(f"chaos: {verdict}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "trials": self.trials,
                "spec": self.spec.to_dict(), "ok": self.ok,
                "injected": dict(self.injected),
                "cells": [cell.to_dict() for cell in self.cells]}


def _allowed_outcomes(case: LitmusCase, model: str) -> FrozenSet:
    from repro.litmus.axiomatic import enumerate_axiomatic
    from repro.litmus.operational import enumerate_outcomes
    try:
        return enumerate_axiomatic(case.program, model)
    except Exception:
        # Axiomatic enumeration does not cover every construct (e.g.
        # RMWs); the operational model is cross-checked equal where both
        # apply, so it is a sound oracle for the rest.
        return enumerate_outcomes(case.program, model)


def run_chaos(trials: int = 25, seed: int = 0,
              spec: FaultSpec = DEFAULT_CHAOS,
              cases: Sequence[LitmusCase] = ALL_CASES,
              policies: Sequence[str] = tuple(POLICY_ORDER),
              config: Optional[SystemConfig] = None,
              watchdog_period: int = 2_000,
              stall_limit: int = 250_000,
              max_cycles: int = 4_000_000,
              progress: Optional[ProgressFn] = None) -> ChaosReport:
    """The chaos gate: ``trials`` faulted runs of every (case, policy)
    cell.  Each trial uses a distinct derived seed for both the timing
    padding and the fault plan, so the whole sweep is reproducible from
    ``seed`` alone."""
    report = ChaosReport(seed=seed, trials=trials, spec=spec)
    allowed_cache: Dict[tuple, FrozenSet] = {}
    totals: Dict[str, int] = {}
    for case in cases:
        name = case.program.name
        for policy in policies:
            model = POLICY_MODEL[policy]
            allowed = allowed_cache.get((name, model))
            if allowed is None:
                allowed = _allowed_outcomes(case, model)
                allowed_cache[(name, model)] = allowed
            cell = ChaosCell(case=name, policy=policy, trials=trials,
                             outcomes=0)
            observed = set()
            for trial in range(trials):
                run_seed = seed * 100_003 + trial
                plan = FaultPlan(spec, seed=run_seed)
                watchdog = Watchdog(period=watchdog_period,
                                    stall_limit=stall_limit)
                try:
                    outcome = run_once(case.program, policy, seed=run_seed,
                                       config=config, faults=plan,
                                       watchdog=watchdog,
                                       max_cycles=max_cycles)
                except Exception as exc:
                    payload = {"trial": trial, "seed": run_seed,
                               "type": type(exc).__name__,
                               "message": str(exc)}
                    diagnostic = getattr(exc, "diagnostic", None)
                    if diagnostic is not None:
                        payload["diagnostic"] = diagnostic
                    cell.errors.append(payload)
                    continue
                for kind, count in plan.injected.items():
                    totals[kind] = totals.get(kind, 0) + count
                observed.add(outcome)
                if outcome not in allowed:
                    cell.violations.append(
                        {"trial": trial, "seed": run_seed,
                         "outcome": repr(outcome),
                         "injected": dict(plan.injected)})
            cell.outcomes = len(observed)
            report.cells.append(cell)
            if progress is not None:
                status = ("ok" if not cell.violations and not cell.errors
                          else f"{len(cell.violations)} violations, "
                               f"{len(cell.errors)} errors")
                progress(f"chaos: {name}/{policy}: "
                         f"{cell.outcomes} outcome(s), {status}")
    report.injected = totals
    return report
