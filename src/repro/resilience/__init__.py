"""Resilience subsystem: deterministic fault injection, runtime
invariant enforcement, and the chaos-mode conformance gate.

Three layers (see ``docs/RESILIENCE.md``):

* :mod:`repro.resilience.faults` — a seeded :class:`FaultPlan` that
  perturbs a run at well-defined hook points (NoC jitter, forced
  evictions, spurious squashes, delayed SB→L1 writes).  A disabled plan
  costs nothing; the same seed always yields the same run.
* :mod:`repro.resilience.invariants` — :func:`check_system` asserts the
  model's own correctness conditions, and :class:`Watchdog` runs them
  periodically plus detects loss of forward progress, turning a hang
  into a structured :class:`DeadlockError`.
* :mod:`repro.resilience.chaos` — :func:`run_chaos` runs the litmus
  battery through the pipeline under injected faults and diffs observed
  outcomes against the axiomatic models: faults may change *timing*,
  never *allowed outcomes*.
* :mod:`repro.resilience.fleet` — the distributed analogue:
  :func:`run_fleet_chaos` drives a real multi-process serve fleet under
  node kills, dropped heartbeats, and partitions
  (:class:`FleetFaultPlan`), asserting every result byte-identical to
  direct execution — faults may move *where a job runs*, never *what it
  returns*.
"""

from repro.resilience.faults import DEFAULT_CHAOS, FaultPlan, FaultSpec
from repro.resilience.invariants import (DeadlockError, InvariantViolation,
                                         Watchdog, check_system,
                                         system_diagnostic)
from repro.resilience.chaos import ChaosReport, run_chaos
from repro.resilience.fleet import (DEFAULT_FLEET_CHAOS,
                                    FleetChaosReport, FleetFaultPlan,
                                    FleetFaultSpec, run_fleet_chaos)

__all__ = [
    "DEFAULT_CHAOS", "FaultPlan", "FaultSpec",
    "DeadlockError", "InvariantViolation", "Watchdog", "check_system",
    "system_diagnostic",
    "ChaosReport", "run_chaos",
    "DEFAULT_FLEET_CHAOS", "FleetChaosReport", "FleetFaultPlan",
    "FleetFaultSpec", "run_fleet_chaos",
]
