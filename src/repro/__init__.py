"""repro — reproduction of "Speculative Enforcement of Store Atomicity"
(Ros & Kaxiras, MICRO 2020).

Public API highlights:

* :func:`repro.sim.simulate` / :func:`repro.sim.compare_policies` — run
  micro-op traces on the cycle-level multicore model under any of the
  five consistency configurations.
* :mod:`repro.core` — the retire gate, SA-speculation policies.
* :mod:`repro.litmus` — operational and axiomatic memory-model engines
  (mp, n6, iriw, and the paper's Figure 5 test).
* :mod:`repro.workloads` — Table IV-calibrated synthetic benchmarks.
"""

__version__ = "1.0.0"

from repro.core.policies import POLICY_ORDER
from repro.sim.config import SKYLAKE_LIKE, SystemConfig
from repro.sim.system import compare_policies, simulate

__all__ = ["simulate", "compare_policies", "SystemConfig", "SKYLAKE_LIKE",
           "POLICY_ORDER", "__version__"]
