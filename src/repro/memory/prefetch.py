"""Stride L1 prefetcher (paper Table III cites Baer's classic design).

Per-PC reference prediction table: each load PC tracks its last address
and observed stride with a 2-bit confidence counter; once confident, the
next ``degree`` strided lines are prefetched into the private hierarchy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List


class _StrideState:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, addr: int) -> None:
        self.last_addr = addr
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Reference-prediction-table stride prefetcher."""

    CONFIDENT = 2

    __slots__ = ("_issue", "line_bytes", "degree", "table_size",
                 "_table", "prefetches_issued")

    def __init__(self, issue: Callable[[int], None], line_bytes: int = 64,
                 degree: int = 2, table_size: int = 256) -> None:
        self._issue = issue
        self.line_bytes = line_bytes
        self.degree = degree
        self.table_size = table_size
        self._table: "OrderedDict[int, _StrideState]" = OrderedDict()
        self.prefetches_issued = 0

    def observe(self, pc: int, addr: int) -> List[int]:
        """Record a demand load; returns the prefetch addresses issued."""
        state = self._table.get(pc)
        issued: List[int] = []
        if state is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            self._table[pc] = _StrideState(addr)
            return issued
        self._table.move_to_end(pc)
        stride = addr - state.last_addr
        if stride != 0 and stride == state.stride:
            state.confidence = min(state.confidence + 1, 3)
        else:
            state.confidence = max(state.confidence - 1, 0)
            state.stride = stride
        state.last_addr = addr
        if state.confidence >= self.CONFIDENT and state.stride != 0:
            for i in range(1, self.degree + 1):
                target = addr + state.stride * i
                if target >= 0:
                    self._issue(target)
                    self.prefetches_issued += 1
                    issued.append(target)
        return issued
