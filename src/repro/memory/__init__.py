"""Memory-hierarchy helpers (stride prefetcher)."""

from repro.memory.prefetch import StridePrefetcher

__all__ = ["StridePrefetcher"]
