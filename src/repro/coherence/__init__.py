"""Write-atomic MESI directory protocol and cache hierarchy."""

from repro.coherence.cache import CacheArray, PrivateHierarchy
from repro.coherence.mesi import (CoherentMemorySystem, DirectoryBank,
                                  PrivateController)

__all__ = ["CacheArray", "PrivateHierarchy", "CoherentMemorySystem",
           "DirectoryBank", "PrivateController"]
