"""Functional cache warm-up.

The paper measures "≈1 billion instructions after the warm up phase";
a short trace-driven run would otherwise spend its whole measurement
window compulsory-missing.  :func:`warm_from_traces` walks the traces
once *functionally* (no timing) and installs their working sets into the
private hierarchies, the L3 banks, and the directory — with correct LRU
recency and coherence states (a store leaves the line M at its core; a
line read by several cores ends up S everywhere).

Must run before the cores are constructed (no removal listeners fire
during warm-up).
"""

from __future__ import annotations

from typing import Sequence

from repro.coherence.mesi import E, GETM, GETS, M, S, CoherentMemorySystem
from repro.cpu import isa
from repro.cpu.isa import Trace


def _warm_evict(memory: CoherentMemorySystem, core_id: int,
                line: int) -> None:
    """Bookkeeping for a line that fell out of a private hierarchy."""
    ctrl = memory.controllers[core_id]
    state = ctrl.state.pop(line, None)
    bank = memory.bank_of(line)
    if state in (M, E):
        if bank.owner.get(line) == core_id:
            del bank.owner[line]
        bank.sharers.pop(line, None)
        bank.l3.insert(line)
    # S lines drop silently (stale sharer bits are harmless, as in the
    # live protocol).


def _install(memory: CoherentMemorySystem, core_id: int, line: int,
             state: str) -> None:
    ctrl = memory.controllers[core_id]
    ctrl.state[line] = state
    victim = ctrl.hierarchy.fill(line)
    if victim is not None:
        _warm_evict(memory, core_id, victim)


def warm_store(memory: CoherentMemorySystem, core_id: int,
               addr: int) -> None:
    """Install a line as if ``core_id`` had written it: M locally,
    invalid everywhere else, owned in the directory."""
    line = memory.controllers[core_id].line_of(addr)
    for other in memory.controllers:
        if other.core_id != core_id and line in other.state:
            other.hierarchy.invalidate(line)
            other.state.pop(line, None)
    bank = memory.bank_of(line)
    bank.owner[line] = core_id
    bank.sharers[line] = set()
    bank.l3.insert(line)
    _install(memory, core_id, line, M)


def warm_load(memory: CoherentMemorySystem, core_id: int,
              addr: int) -> None:
    """Install a line as if ``core_id`` had read it: E if nobody else
    holds it, otherwise S everywhere (downgrading a remote owner)."""
    ctrl = memory.controllers[core_id]
    line = ctrl.line_of(addr)
    if line in ctrl.state:
        ctrl.hierarchy.fill(line)  # refresh recency, no state change
        return
    bank = memory.bank_of(line)
    owner = bank.owner.get(line)
    sharers = bank.sharers.setdefault(line, set())
    if owner is not None and owner != core_id:
        memory.controllers[owner].state[line] = S
        sharers.add(owner)
        del bank.owner[line]
        bank.l3.insert(line)
        state = S
    elif sharers:
        state = S
    else:
        state = E
        bank.owner[line] = core_id
    sharers.add(core_id)
    bank.l3.insert(line)
    _install(memory, core_id, line, state)


def warm_from_traces(memory: CoherentMemorySystem,
                     traces: Sequence[Trace]) -> None:
    """Round-robin functional walk of all traces (one op per core per
    step, as a fair interleaving) installing every touched line."""
    longest = max(len(trace) for trace in traces)
    for position in range(longest):
        for core_id, trace in enumerate(traces):
            if position >= len(trace):
                continue
            op = trace[position]
            if op.kind == isa.STORE:
                warm_store(memory, core_id, op.addr)
            elif op.kind == isa.LOAD:
                warm_load(memory, core_id, op.addr)
