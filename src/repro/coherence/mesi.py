"""Write-atomic MESI directory protocol.

The paper assumes "a typical invalidation-based MESI protocol that
acknowledges a write only after all invalidations have been performed"
(Section II-E) — i.e. a *write-atomic* memory system, which is what
makes the x86 configuration rMCA rather than PC.  This module implements
that protocol:

* A full-map directory, banked and co-located with the shared L3.
* Private per-core controllers in front of an inclusive L1+L2 hierarchy.
* Blocking directory: one transaction per line at a time; younger
  requests to the same line queue at the directory.
* A store is reported complete to the core ("inserted in memory order")
  only once the requestor has collected the grant, the data, *and* every
  invalidation acknowledgement.
* Invalidations and hierarchy (L2) evictions are reported to the core
  via a removal listener — these are exactly the events that squash
  speculative loads in the LQ.

The protocol is timing-only: data values are not tracked (functional
correctness of the memory models is validated separately by the
operational litmus engine in :mod:`repro.litmus`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.coherence.cache import CacheArray, PrivateHierarchy
from repro.noc.network import Network
from repro.obs.bus import NULL_BUS
from repro.sim.config import MemoryConfig, SystemConfig
from repro.sim.engine import Engine

# Stable states of a line in a private hierarchy.
M, E, S = "M", "E", "S"

GETS = "GetS"
GETM = "GetM"
PUTM = "PutM"

RemovalListener = Callable[[int, str], None]  # (line, "inval"|"evict")


@dataclass(slots=True)
class _Txn:
    """An outstanding miss/upgrade at a private controller (one MSHR)."""

    line: int
    kind: str                       # GETS or GETM
    callbacks: List[Callable[[], None]] = field(default_factory=list)
    acks_needed: int = -1           # unknown until the grant arrives
    acks_got: int = 0
    data_got: bool = False
    granted_state: str = S

    def complete(self) -> bool:
        return (self.acks_needed >= 0
                and self.acks_got >= self.acks_needed
                and self.data_got)


class DirectoryBank:
    """One bank of the full-map directory plus its L3 data slice.

    The directory itself is unbounded (the paper provisions 200% L2
    coverage, which in practice behaves as 'large enough'); the L3 data
    array is bounded and only determines whether a fill is served by the
    L3 or by memory.
    """

    __slots__ = ("system", "index", "l3", "owner", "sharers", "busy",
                 "waiting", "stale_putm")

    def __init__(self, system: "CoherentMemorySystem", index: int) -> None:
        self.system = system
        self.index = index
        self.l3 = CacheArray(system.config.l3_bank)
        self.owner: Dict[int, int] = {}           # line -> core id (M/E)
        self.sharers: Dict[int, Set[int]] = {}    # line -> sharer core ids
        self.busy: Set[int] = set()
        self.waiting: Dict[int, Deque[tuple]] = {}
        # (line, core) -> count of in-flight PutMs already known stale:
        # the core re-requested the line before its writeback arrived, so
        # the writeback must not clear the *new* incarnation's ownership.
        self.stale_putm: Dict[Tuple[int, int], int] = {}

    # -- request entry points (called after network latency) ----------

    def request(self, kind: str, line: int, requestor: int) -> None:
        if line in self.busy:
            self.waiting.setdefault(line, deque()).append((kind, requestor))
            return
        self._process(kind, line, requestor)

    def unblock(self, line: int) -> None:
        """The requestor finished its transaction; admit queued requests
        until one makes the line busy again (PutM does not, so several
        queued writebacks may drain at once)."""
        self.busy.discard(line)
        while line not in self.busy:
            queue = self.waiting.get(line)
            if not queue:
                break
            kind, requestor = queue.popleft()
            if not queue:
                del self.waiting[line]
            self._process(kind, line, requestor)

    # -- transaction processing ----------------------------------------

    def _process(self, kind: str, line: int, requestor: int) -> None:
        if kind == PUTM:
            self._process_putm(line, requestor)
            return
        # A GetS/GetM from the registered owner means the owner silently
        # lost the line (its PutM is still in flight); normalize, and
        # remember to ignore that writeback when it arrives — by then the
        # same core may own the line again, so the owner check alone
        # cannot tell the stale PutM from a genuine one.
        if self.owner.get(line) == requestor:
            del self.owner[line]
            key = (line, requestor)
            self.stale_putm[key] = self.stale_putm.get(key, 0) + 1

        self.busy.add(line)
        lookup = self.system.config.l3_bank.hit_latency
        owner = self.owner.get(line)
        sharers = self.sharers.setdefault(line, set())
        ctrl = self.system.controllers[requestor]

        if kind == GETS:
            self._process_gets(line, requestor, ctrl, owner, sharers, lookup)
        elif kind == GETM:
            self._process_getm(line, requestor, ctrl, owner, sharers, lookup)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown request {kind}")

    def _process_gets(self, line: int, requestor: int,
                      ctrl: "PrivateController", owner: Optional[int],
                      sharers: Set[int], lookup: int) -> None:
        if owner is not None:
            # Forward to owner; owner downgrades to S and supplies data.
            owner_ctrl = self.system.controllers[owner]
            self.system.engine.schedule(
                lookup, self.system.network.send_control,
                owner_ctrl.handle_fwd_gets, line, requestor)
            sharers.add(owner)
            sharers.add(requestor)
            del self.owner[line]
            self.l3.insert(line)  # implicit writeback of the owner's data
            self._grant(ctrl, line, lookup, acks=0, with_data=False, state=S)
        else:
            fill = self._l3_fill_latency(line)
            if sharers:
                state = S
            else:
                state = E
                self.owner[line] = requestor
            sharers.add(requestor)
            self._grant(ctrl, line, lookup + fill, acks=0, with_data=True,
                        state=state)

    def _process_getm(self, line: int, requestor: int,
                      ctrl: "PrivateController", owner: Optional[int],
                      sharers: Set[int], lookup: int) -> None:
        invalidatees: Set[int] = {c for c in sharers if c != requestor}
        if owner is not None:
            invalidatees.add(owner)
        for victim in sorted(invalidatees):
            victim_ctrl = self.system.controllers[victim]
            self.system.engine.schedule(
                lookup, self.system.network.send_control,
                victim_ctrl.handle_inv, line, requestor)
            self.system.stats_invalidations += 1

        if requestor in sharers:
            # Upgrade: the requestor already holds the data.
            self._grant(ctrl, line, lookup, acks=len(invalidatees),
                        with_data=True, state=M)
        elif owner is not None:
            # The old owner's data rides with its invalidation ack.
            self._grant(ctrl, line, lookup, acks=len(invalidatees),
                        with_data=False, state=M)
        else:
            fill = self._l3_fill_latency(line)
            self._grant(ctrl, line, lookup + fill, acks=len(invalidatees),
                        with_data=True, state=M)
        self.owner[line] = requestor
        self.sharers[line] = set()

    def _process_putm(self, line: int, requestor: int) -> None:
        # Writeback of a dirty evicted line.  A stale PutM (ownership has
        # already moved on) is acknowledged and otherwise ignored.
        ctrl = self.system.controllers[requestor]
        key = (line, requestor)
        pending = self.stale_putm.get(key, 0)
        if pending:
            if pending == 1:
                del self.stale_putm[key]
            else:
                self.stale_putm[key] = pending - 1
        elif self.owner.get(line) == requestor and line not in self.busy:
            del self.owner[line]
            self.sharers.pop(line, None)
            self.l3.insert(line)
        self.system.network.send_control(ctrl.handle_putm_ack, line)

    def _l3_fill_latency(self, line: int) -> int:
        """Extra latency to fetch data: 0 on an L3 hit (charged with the
        directory lookup), memory latency on an L3 miss (then cached)."""
        if self.l3.lookup(line):
            return 0
        self.l3.insert(line)
        return self.system.config.memory_latency

    def _grant(self, ctrl: "PrivateController", line: int, delay: int,
               acks: int, with_data: bool, state: str) -> None:
        msg_class = "data" if with_data else "control"
        self.system.engine.schedule(
            delay, self.system.network.send, msg_class,
            ctrl.handle_grant, line, acks, with_data, state)


class PrivateController:
    """Per-core coherence controller for the private L1+L2 hierarchy."""

    __slots__ = ("system", "core_id", "hierarchy", "state", "txns",
                 "txn_queue", "wb_buffer", "removal_listener", "mshrs",
                 "fault_store_delay", "_fault_store_horizon",
                 "_p_inval", "_p_evict", "_p_fill", "_p_prefetch",
                 "line_bytes", "_line_pow2", "_line_mask")

    def __init__(self, system: "CoherentMemorySystem", core_id: int) -> None:
        self.system = system
        self.core_id = core_id
        mem = system.config
        self.hierarchy = PrivateHierarchy(mem.l1, mem.l2)
        # Line-align fast path: every core-facing access first maps a
        # byte address to its line, so the alignment is computed here in
        # one step instead of hopping controller -> hierarchy -> L1.
        lb = self.hierarchy.line_bytes
        self.line_bytes = lb
        self._line_pow2 = lb & (lb - 1) == 0
        self._line_mask = ~(lb - 1)
        self.state: Dict[int, str] = {}
        self.txns: Dict[int, _Txn] = {}
        self.txn_queue: Deque[tuple] = deque()  # overflow beyond MSHRs
        self.wb_buffer: Set[int] = set()
        self.removal_listener: Optional[RemovalListener] = None
        self.mshrs = system.core_mshrs
        # Fault-injection hook (repro.resilience.faults): extra cycles
        # on an owned-line store commit.  None when no plan installed.
        self.fault_store_delay: Optional[Callable[[], int]] = None
        self._fault_store_horizon = 0
        self._p_inval = system.probe_bus.resolve("mesi.inval")
        self._p_evict = system.probe_bus.resolve("mesi.evict")
        self._p_fill = system.probe_bus.resolve("cache.fill")
        self._p_prefetch = system.probe_bus.resolve("prefetch.issue")
        if system.system_config.core.l1_evict_squash:
            self.hierarchy.l1_evict_listener = self._on_l1_evict

    def _on_l1_evict(self, line: int) -> None:
        # An L1 castout can filter a later invalidation from the load
        # queue's point of view; the paper therefore treats it like an
        # invalidation for speculative loads (Section IV, 'Evictions').
        if self.removal_listener is not None:
            self.removal_listener(line, "evict")

    # ------------------------------------------------------------------
    # Core-facing API
    # ------------------------------------------------------------------

    def line_of(self, addr: int) -> int:
        if self._line_pow2:
            return addr & self._line_mask
        return addr - (addr % self.line_bytes)

    def load(self, addr: int, done: Callable[[], None]) -> bool:
        """Access for a load.  Returns True on a private-hierarchy hit and
        schedules ``done`` after the hit latency; on a miss, ``done`` runs
        once the line is filled."""
        line = (addr & self._line_mask) if self._line_pow2 \
            else addr - (addr % self.line_bytes)
        if line in self.state:
            latency = self.hierarchy.access_latency(line)
            assert latency is not None, "state map out of sync with tags"
            self.system.engine.schedule(latency, done)
            return True
        self._miss(GETS, line, done)
        return False

    def store(self, addr: int, done: Callable[[], None]) -> bool:
        """Access for a store leaving the store buffer.  ``done`` runs when
        the write is *globally performed* (all invalidations acked)."""
        line = (addr & self._line_mask) if self._line_pow2 \
            else addr - (addr % self.line_bytes)
        if self.state.get(line) in (M, E):
            self.state[line] = M
            latency = self.hierarchy.access_latency(line)
            assert latency is not None, "state map out of sync with tags"
            delay = self.system.config.store_commit_latency
            if self.fault_store_delay is not None:
                delay = self._faulted_commit_delay(delay)
            self.system.engine.schedule(delay, done)
            return True
        self._miss(GETM, line, done)
        return False

    def _faulted_commit_delay(self, base: int) -> int:
        """Apply the injected extra store-commit delay, clamped to a
        monotone completion horizon: owned-line SB writes pipeline and
        must complete in order (TSO memory-order insertion), so a jitter
        that would finish a younger store first is stretched to the
        oldest outstanding completion instead."""
        now = self.system.engine.now
        target = now + base + self.fault_store_delay()
        if target < self._fault_store_horizon:
            target = self._fault_store_horizon
        self._fault_store_horizon = target
        return target - now

    def prefetch(self, addr: int) -> None:
        """Best-effort GetS issued by the stride prefetcher."""
        line = self.line_of(addr)
        if line in self.state or line in self.txns:
            return
        if len(self.txns) >= self.mshrs:
            return  # prefetches never queue
        if self._p_prefetch is not None:
            self._p_prefetch(self.core_id, self.system.engine.now, line)
        self._start_txn(GETS, line, lambda: None)

    def prefetch_exclusive(self, addr: int) -> bool:
        """Ownership (RFO) prefetch for a store in the window or the SB:
        get the line in M early so the SB drain write is an L1 hit.
        Returns False if dropped for lack of an MSHR (caller may retry)."""
        line = (addr & self._line_mask) if self._line_pow2 \
            else addr - (addr % self.line_bytes)
        if self.state.get(line) in (M, E) or line in self.txns:
            return True
        if len(self.txns) >= self.mshrs:
            return False  # prefetches never queue
        self._start_txn(GETM, line, lambda: None)
        return True

    def peek_state(self, addr: int) -> Optional[str]:
        line = (addr & self._line_mask) if self._line_pow2 \
            else addr - (addr % self.line_bytes)
        return self.state.get(line)

    # ------------------------------------------------------------------
    # Miss handling
    # ------------------------------------------------------------------

    def _miss(self, kind: str, line: int, done: Callable[[], None]) -> None:
        txn = self.txns.get(line)
        if txn is not None:
            if kind == GETS or txn.kind == GETM:
                txn.callbacks.append(done)
            else:
                # A store needs M while only a GetS is in flight: wait for
                # the GetS to finish, then upgrade.
                self.txn_queue.append((kind, line, done))
            return
        if len(self.txns) >= self.mshrs:
            self.txn_queue.append((kind, line, done))
            return
        self._start_txn(kind, line, done)

    def _start_txn(self, kind: str, line: int,
                   done: Callable[[], None]) -> None:
        txn = _Txn(line=line, kind=kind, callbacks=[done])
        self.txns[line] = txn
        bank = self.system.bank_of(line)
        self.system.network.send_control(bank.request, kind, line,
                                         self.core_id)

    def _drain_queue(self) -> None:
        progressed = True
        while progressed and self.txn_queue and len(self.txns) < self.mshrs:
            progressed = False
            kind, line, done = self.txn_queue.popleft()
            existing = self.txns.get(line)
            if existing is not None:
                if kind == GETS or existing.kind == GETM:
                    existing.callbacks.append(done)
                    progressed = True
                    continue
                self.txn_queue.appendleft((kind, line, done))
                return
            if kind == GETM and self.state.get(line) in (M, E):
                # Became owner while queued (the earlier GetS was granted
                # E); the store can complete locally.
                self.state[line] = M
                latency = self.hierarchy.access_latency(line)
                self.system.engine.schedule(latency or 0, done)
                progressed = True
                continue
            self._start_txn(kind, line, done)
            progressed = True

    # ------------------------------------------------------------------
    # Protocol message handlers (arrive via the network)
    # ------------------------------------------------------------------

    def handle_grant(self, line: int, acks: int, with_data: bool,
                     state: str) -> None:
        txn = self.txns.get(line)
        if txn is None:  # pragma: no cover - defensive
            return
        txn.acks_needed = acks
        txn.granted_state = state
        if with_data:
            txn.data_got = True
        self._maybe_finish(txn)

    def handle_data(self, line: int) -> None:
        """Data supplied by a previous owner (GetS forward)."""
        txn = self.txns.get(line)
        if txn is None:  # pragma: no cover - defensive
            return
        txn.data_got = True
        self._maybe_finish(txn)

    def handle_inv_ack(self, line: int, with_data: bool) -> None:
        txn = self.txns.get(line)
        if txn is None:  # pragma: no cover - defensive
            return
        txn.acks_got += 1
        if with_data:
            txn.data_got = True
        self._maybe_finish(txn)

    def _maybe_finish(self, txn: _Txn) -> None:
        if not txn.complete():
            return
        line = txn.line
        del self.txns[line]
        self.state[line] = txn.granted_state
        if self._p_fill is not None:
            self._p_fill(self.core_id, self.system.engine.now, line)
        victim = self.hierarchy.fill(line)
        if victim is not None:
            self._evict(victim)
        latency = self.hierarchy.l1.config.hit_latency
        for callback in txn.callbacks:
            self.system.engine.schedule(latency, callback)
        bank = self.system.bank_of(line)
        self.system.network.send_control(bank.unblock, line)
        self._drain_queue()

    def handle_fwd_gets(self, line: int, requestor: int) -> None:
        """Owner receives a forwarded GetS: downgrade to S, send data."""
        if line in self.state:
            self.state[line] = S
        access = self.hierarchy.l2.config.hit_latency
        target = self.system.controllers[requestor]
        self.system.engine.schedule(
            access, self.system.network.send_data, target.handle_data, line)
        self.wb_buffer.discard(line)

    def handle_inv(self, line: int, requestor: int) -> None:
        """Invalidation on behalf of ``requestor``'s GetM/upgrade."""
        held_exclusive = (self.state.get(line) in (M, E)
                          or line in self.wb_buffer)
        present = self.hierarchy.invalidate(line)
        self.state.pop(line, None)
        self.wb_buffer.discard(line)
        if self._p_inval is not None:
            self._p_inval(self.core_id, self.system.engine.now, line,
                          requestor, present)
        if present and self.removal_listener is not None:
            self.removal_listener(line, "inval")
        target = self.system.controllers[requestor]
        if held_exclusive:
            self.system.network.send_data(target.handle_inv_ack, line, True)
        else:
            self.system.network.send_control(target.handle_inv_ack, line,
                                             False)

    def handle_putm_ack(self, line: int) -> None:
        self.wb_buffer.discard(line)

    # ------------------------------------------------------------------
    # Evictions
    # ------------------------------------------------------------------

    def force_evict(self, line: int) -> bool:
        """Fault injection: evict ``line`` from this private hierarchy
        as if capacity-pressured.  Returns False when the line is not
        held in a stable state (nothing to evict).  Goes through the
        normal eviction path: speculative loads squash, M/E lines write
        back, and the directory handles the silent loss exactly as it
        does for organic evictions."""
        if line not in self.state:
            return False
        self.hierarchy.invalidate(line)
        self._evict(line)
        return True

    def _evict(self, line: int) -> None:
        state = self.state.pop(line, None)
        self.system.stats_evictions += 1
        if self._p_evict is not None:
            self._p_evict(self.core_id, self.system.engine.now, line)
        if self.removal_listener is not None:
            self.removal_listener(line, "evict")
        if state in (M, E):
            self.wb_buffer.add(line)
            bank = self.system.bank_of(line)
            self.system.network.send_data(bank.request, PUTM, line,
                                          self.core_id)
        # S lines are dropped silently (the directory's sharer list goes
        # stale; a later Inv to this core is acked without effect).


class CoherentMemorySystem:
    """The full shared-memory system: directory banks + per-core
    controllers, glued together by the interconnect."""

    __slots__ = ("engine", "system_config", "config", "network",
                 "core_mshrs", "stats_invalidations", "stats_evictions",
                 "probe_bus", "banks", "controllers", "line_bytes")

    def __init__(self, engine: Engine, config: SystemConfig,
                 network: Optional[Network] = None,
                 probes=None) -> None:
        self.engine = engine
        self.system_config = config
        self.config: MemoryConfig = config.memory
        self.core_mshrs = config.core.mshrs
        self.stats_invalidations = 0
        self.stats_evictions = 0
        # Resolved by each PrivateController at construction and by the
        # Network; must be set before either is built.
        self.probe_bus = probes if probes is not None else NULL_BUS
        self.network = network or Network(engine, config.network,
                                          probes=self.probe_bus)
        self.banks = [DirectoryBank(self, i)
                      for i in range(self.config.l3_banks)]
        self.controllers = [PrivateController(self, i)
                            for i in range(config.cores)]
        self.line_bytes = self.config.l1.line_bytes

    def bank_of(self, line: int) -> DirectoryBank:
        return self.banks[(line // self.line_bytes) % len(self.banks)]

    def controller(self, core_id: int) -> PrivateController:
        return self.controllers[core_id]
