"""Set-associative cache tag arrays with LRU replacement.

The performance simulator is timing-only (functional values live in the
litmus engine), so a cache here tracks *presence* of line addresses and
produces evictions; coherence state is kept by the protocol controllers
(`repro.coherence.mesi`) at private-hierarchy granularity.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.sim.config import CacheConfig


class CacheArray:
    """A set-associative array of line addresses with true-LRU."""

    __slots__ = ("config", "line_bytes", "num_sets", "ways", "_pow2",
                 "_line_mask", "_line_shift", "_set_mask", "_sets",
                 "hits", "misses", "evictions")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.line_bytes = config.line_bytes
        self.num_sets = config.sets
        self.ways = config.ways
        # Line size and set count are powers of two in every paper
        # configuration, so the index/align computations on the access
        # fast path reduce to masks and shifts (identical results to the
        # div/mod forms; non-power-of-two geometries take the slow path).
        self._pow2 = (self.line_bytes & (self.line_bytes - 1) == 0
                      and self.num_sets & (self.num_sets - 1) == 0)
        self._line_mask = ~(self.line_bytes - 1)
        self._line_shift = self.line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # Each set is an OrderedDict {line_addr: None}; most recent last.
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def line_of(self, addr: int) -> int:
        """The line address (block-aligned) containing byte ``addr``."""
        if self._pow2:
            return addr & self._line_mask
        return addr - (addr % self.line_bytes)

    def _set_of(self, line: int) -> "OrderedDict[int, None]":
        if self._pow2:
            return self._sets[(line >> self._line_shift) & self._set_mask]
        return self._sets[(line // self.line_bytes) % self.num_sets]

    # ------------------------------------------------------------------
    # The four per-access methods below inline :meth:`_set_of` — every
    # simulated memory access and every warm-up step lands here, and the
    # set-selection call costs as much as the dict operation it guards.
    # Results are identical to the method form (kept above as the
    # readable reference).

    def lookup(self, line: int, touch: bool = True) -> bool:
        """True if ``line`` is present; optionally update LRU order."""
        if self._pow2:
            bucket = self._sets[(line >> self._line_shift) & self._set_mask]
        else:
            bucket = self._sets[(line // self.line_bytes) % self.num_sets]
        if line in bucket:
            if touch:
                bucket.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Presence check with no LRU update and no stat side effects."""
        if self._pow2:
            return line in self._sets[(line >> self._line_shift)
                                      & self._set_mask]
        return line in self._sets[(line // self.line_bytes) % self.num_sets]

    def insert(self, line: int) -> Optional[int]:
        """Insert ``line``; returns the evicted line address, if any."""
        if self._pow2:
            bucket = self._sets[(line >> self._line_shift) & self._set_mask]
        else:
            bucket = self._sets[(line // self.line_bytes) % self.num_sets]
        if line in bucket:
            bucket.move_to_end(line)
            return None
        victim = None
        if len(bucket) >= self.ways:
            victim, _ = bucket.popitem(last=False)
            self.evictions += 1
        bucket[line] = None
        return victim

    def remove(self, line: int) -> bool:
        """Remove ``line`` (e.g. on invalidation); True if it was present."""
        if self._pow2:
            bucket = self._sets[(line >> self._line_shift) & self._set_mask]
        else:
            bucket = self._sets[(line // self.line_bytes) % self.num_sets]
        if line in bucket:
            del bucket[line]
            return True
        return False

    def resident_lines(self) -> List[int]:
        """All line addresses currently resident (test/debug helper)."""
        return [line for bucket in self._sets for line in bucket]

    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)


class PrivateHierarchy:
    """A core's private L1+L2, inclusive (L1 contents are a subset of L2).

    Coherence is tracked per *hierarchy*: a line the core holds lives in
    L2 and possibly also in L1 (which only affects access latency).  An
    L2 eviction therefore removes the line from the core entirely — this
    is the eviction event the paper treats like an invalidation for
    squash purposes (Section IV, 'Evictions').
    """

    __slots__ = ("l1", "l2", "line_bytes", "l1_evict_listener")

    def __init__(self, l1: CacheConfig, l2: CacheConfig) -> None:
        if l2.line_bytes != l1.line_bytes:
            raise ValueError("L1/L2 line sizes must match")
        self.l1 = CacheArray(l1)
        self.l2 = CacheArray(l2)
        self.line_bytes = l1.line_bytes
        # Notified on L1 evictions.  The line is still in L2 (still
        # coherent), but the paper squashes speculative loads on *any*
        # eviction that could filter a later invalidation from the load
        # queue's view — L1 castouts included (Section IV, 'Evictions').
        self.l1_evict_listener = None

    def line_of(self, addr: int) -> int:
        return self.l1.line_of(addr)

    def _l1_insert(self, line: int) -> None:
        victim = self.l1.insert(line)
        if victim is not None and self.l1_evict_listener is not None:
            self.l1_evict_listener(victim)

    def access_latency(self, line: int) -> Optional[int]:
        """Hit latency if the line is resident, else None.

        An L2 hit also refills the line into L1 (possibly evicting an L1
        line, which stays in L2; the castout is still reported to the
        eviction listener).
        """
        if self.l1.lookup(line):
            return self.l1.config.hit_latency
        if self.l2.lookup(line):
            self._l1_insert(line)
            return self.l2.config.hit_latency
        return None

    def contains(self, line: int) -> bool:
        return self.l2.contains(line)

    def fill(self, line: int) -> Optional[int]:
        """Install a line into L1+L2; returns the *hierarchy* victim line
        (evicted from L2, hence from the core), if any."""
        victim = self.l2.insert(line)
        if victim is not None:
            self.l1.remove(victim)  # inclusion
        self._l1_insert(line)
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop a line everywhere (external invalidation)."""
        self.l1.remove(line)
        return self.l2.remove(line)
