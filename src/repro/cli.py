"""Command-line interface: ``python -m repro <command>``.

Commands:

``list``                          benchmarks and litmus tests available
``litmus NAME``                   enumerate a litmus test under all models
``explain NAME -m MODEL k=v ...`` happens-before explanation of a witness
``compare NAME``                  ConsistencyChecker: 370 vs x86 diff
``sample NAME -m MODEL``          litmus7-style outcome sampling
``bench NAME [-p POLICY]``        run one benchmark, print its stats
``trace NAME [-p POLICY]``        run with full observability: Chrome
                                  trace JSON (Perfetto-loadable) +
                                  JSONL metrics + top-stalls summary
``sweep NAME [NAME ...]``         benchmarks under all 5 configs, in
                                  parallel, with on-disk result caching,
                                  per-job timeouts and bounded retries
``chaos``                         litmus conformance under deterministic
                                  fault injection (the chaos gate)
``serve``                         long-lived batch simulation service:
                                  asyncio HTTP JSON API over a sharded
                                  worker pool with admission control and
                                  a persistent result store
                                  (docs/SERVICE.md)
``submit SPEC [SPEC ...]``        submit bench:NAME[:POLICY] /
                                  litmus:NAME[:MODELS] jobs (or --file)
                                  to a running service; --wait polls
                                  them to completion
``poll JOB_ID``                   job status/result from a running
                                  service (also: ``poll healthz``,
                                  ``poll metrics``)
``cache``                         result-cache statistics and LRU
                                  garbage collection (--stats / --gc)
``lint [PATH ...]``               static determinism/zero-overhead
                                  discipline analysis (AST rules, see
                                  docs/STATIC_ANALYSIS.md) and, with
                                  ``--litmus``, the herd-style relation
                                  classifier cross-checked against the
                                  axiomatic enumerator
``synth``                         exhaustive bounded litmus synthesis:
                                  enumerate every small program, keep
                                  model-pair distinguishers, minimize,
                                  triple-check, and ``--promote`` them
                                  into the battery (docs/SYNTHESIS.md)
``zoo``                           the memory-model registry: model
                                  table, machine-checked conformance
                                  lattice over the battery, optional
                                  triple-oracle cross-check of random
                                  RMW/acquire-release programs
                                  (docs/MEMORY_MODELS.md)

``bench`` and ``replay`` take ``--json`` (machine-readable stats) and
``--obs``/``--obs-out`` (histograms + gate intervals, optionally as
JSONL); ``sweep`` takes ``--obs``/``--obs-out`` to carry per-cell
observability summaries alongside the cached results.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.core.policies import POLICY_ORDER
from repro.litmus import (ALL_CASES, EXTRA_CASES, MODELS,
                          enumerate_outcomes, explain, sample)
from repro.resilience import DEFAULT_CHAOS as DEFAULT_CHAOS_SPEC
from repro.litmus.checker import compare
from repro.litmus.program import Program


def _litmus_registry() -> Dict[str, Program]:
    # Memoized once per process (repro.litmus.registry): cmd_list,
    # cmd_litmus, cmd_explain, ... all resolve names against the same
    # build instead of reconstructing the battery on every call.
    from repro.litmus.registry import litmus_registry
    return litmus_registry()


def _find_program(name: str) -> Program:
    registry = _litmus_registry()
    if name not in registry:
        raise SystemExit(f"unknown litmus test {name!r}; try one of: "
                         + ", ".join(sorted(registry)))
    return registry[name]


def _parse_witness(pairs: List[str]) -> Dict[str, int]:
    witness = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"witness condition {pair!r} is not key=value")
        key, value = pair.split("=", 1)
        witness[key] = int(value)
    return witness


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_list(_args) -> int:
    from repro.workloads import PARALLEL_PROFILES, SEQUENTIAL_PROFILES
    print("litmus tests:")
    for name in sorted(_litmus_registry()):
        print(f"  {name}")
    print("\nparallel benchmarks (SPLASH-3 / PARSEC):")
    print("  " + ", ".join(PARALLEL_PROFILES))
    print("\nsequential benchmarks (SPECrate CPU2017):")
    print("  " + ", ".join(SEQUENTIAL_PROFILES))
    print("\nconfigurations: " + ", ".join(POLICY_ORDER))
    return 0


def cmd_litmus(args) -> int:
    program = _find_program(args.name)
    for tid, thread in enumerate(program.threads):
        print(f"T{tid}: " + " ; ".join(str(op) for op in thread))
    for model in (args.models or MODELS):
        try:
            outcomes = enumerate_outcomes(program, model)
        except ValueError as exc:
            print(f"\n{model}: {exc}")
            continue
        print(f"\n{model}: {len(outcomes)} outcomes")
        for outcome in sorted(outcomes, key=str):
            print(f"  {outcome}")
    return 0


def cmd_explain(args) -> int:
    program = _find_program(args.name)
    witness = _parse_witness(args.witness)
    if not witness:
        raise SystemExit("explain needs witness conditions (e.g. r0_rx=1)")
    print(explain(program, args.model, **witness))
    return 0


def cmd_compare(args) -> int:
    program = _find_program(args.name)
    print(compare(program).summary())
    return 0


def cmd_run_file(args) -> int:
    from repro.litmus.parser import LitmusParseError, parse_litmus_file
    try:
        parsed = parse_litmus_file(args.path)
    except (OSError, LitmusParseError) as exc:
        raise SystemExit(str(exc))
    program = parsed.program
    for tid, thread in enumerate(program.threads):
        print(f"T{tid}: " + " ; ".join(str(op) for op in thread))
    for model in (args.models or MODELS):
        try:
            outcomes = enumerate_outcomes(program, model)
        except ValueError as exc:
            print(f"\n{model}: {exc}")
            continue
        print(f"\n{model}: {len(outcomes)} outcomes")
        if parsed.witness is not None:
            from repro.litmus.operational import _matches
            hit = any(_matches(o, parsed.witness) for o in outcomes)
            print(f"  exists {parsed.witness}: "
                  f"{'ALLOWED' if hit else 'forbidden'}")
        else:
            for outcome in sorted(outcomes, key=str):
                print(f"  {outcome}")
    return 0


def cmd_sample(args) -> int:
    program = _find_program(args.name)
    report = sample(program, args.model, runs=args.runs, seed=args.seed)
    print(report.summary(top=args.top))
    return 0


def _emit_obs(report, stats, obs_out: Optional[str]) -> None:
    """Shared --obs tail for bench/replay: summary + optional JSONL."""
    from repro.analysis.report import top_stalls
    print(top_stalls(report, stats))
    if obs_out:
        n = report.write_jsonl(obs_out)
        print(f"wrote {obs_out}: {n} metric records")


def cmd_bench(args) -> int:
    obs = args.obs or bool(args.obs_out)
    if obs:
        from repro.workloads.runner import observe_benchmark
        result, report, _system = observe_benchmark(
            args.name, policy=args.policy, cores=args.cores,
            length=args.length, seed=args.seed)
    else:
        from repro.workloads.runner import run_benchmark
        result = run_benchmark(args.name, policy=args.policy,
                               cores=args.cores, length=args.length,
                               seed=args.seed)
    if args.json:
        print(result.stats.to_json(indent=2))
        if obs and args.obs_out:
            report.write_jsonl(args.obs_out)
        return 0
    total = result.stats.total
    print(f"{args.name} under {args.policy}: "
          f"{result.cycles} cycles, "
          f"{total.retired_instructions} instructions")
    print(f"  loads:          {total.loads_pct:6.2f}% of instructions")
    print(f"  forwarded (SLF):{total.forwarded_pct:6.2f}%")
    print(f"  gate stalls:    {total.gate_stalls_pct:6.3f}% "
          f"({total.avg_gate_stall_cycles:.1f} cycles each)")
    print(f"  re-executed:    {total.reexecuted_pct:6.3f}%")
    stalls = total.stall_pct
    print(f"  dispatch stalls: ROB {stalls['ROB']:.1f}%  "
          f"LQ {stalls['LQ']:.1f}%  SQ/SB {stalls['SQ/SB']:.1f}%")
    if obs:
        _emit_obs(report, result.stats, args.obs_out)
    return 0


def cmd_trace(args) -> int:
    from repro.obs.chrome_trace import write_chrome_trace
    from repro.obs.validate import validate_chrome_trace
    from repro.analysis.report import top_stalls
    from repro.workloads.runner import observe_benchmark

    result, report, system = observe_benchmark(
        args.name, policy=args.policy, cores=args.cores,
        length=args.length, seed=args.seed, trace_pipeline=True,
        sample_interval=args.sample_interval)
    out = args.out or f"{args.name}-{args.policy}.trace.json"
    trace = write_chrome_trace(out, system, report, result.stats)
    counts = validate_chrome_trace(trace)
    print(f"wrote {out}: {len(trace['traceEvents'])} events "
          f"({counts['X']} slices, {counts['C']} counter samples, "
          f"{counts['gate_slices']} gate intervals) — "
          f"load it at https://ui.perfetto.dev or chrome://tracing")
    metrics = args.metrics or f"{args.name}-{args.policy}.metrics.jsonl"
    n = report.write_jsonl(metrics)
    print(f"wrote {metrics}: {n} metric records")
    print()
    print(top_stalls(report, result.stats, top=args.top))
    return 0


def cmd_leak(args) -> int:
    import json

    from repro.leakage import GADGETS, leak_observe_run, leak_run

    names = args.gadgets or sorted(GADGETS)
    for name in names:
        if name not in GADGETS:
            raise SystemExit(f"unknown gadget {name!r} "
                             f"(have: {', '.join(sorted(GADGETS))})")
    policies = POLICY_ORDER if args.policy == "all" else [args.policy]

    results = []
    for name in names:
        gadget = GADGETS[name]
        for policy in policies:
            if args.trace_dir:
                import os
                stats, obs_report, report, system = leak_observe_run(
                    gadget, policy)
                from repro.obs.chrome_trace import write_chrome_trace
                os.makedirs(args.trace_dir, exist_ok=True)
                out = os.path.join(args.trace_dir,
                                   f"{name}-{policy}.trace.json")
                write_chrome_trace(out, system, obs_report, stats,
                                   report)
                print(f"wrote {out}")
            else:
                stats, report, _system = leak_run(gadget, policy)
            results.append((name, policy, stats, report))

    if args.json:
        doc = {"gadgets": [
            {"gadget": name, "policy": policy, **stats.leakage}
            for name, policy, stats, _ in results]}
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    print(f"{'gadget':<14}{'policy':<18}{'leaks':>6}{'exposed':>9}"
          f"{'spec':>6}  leaked lines")
    # Leaked-line counts sum per gadget (each gadget is its own
    # experiment; two gadgets sharing a probe line are two leaks).
    totals: Dict[str, int] = {}
    for name, policy, stats, report in results:
        lines = ",".join(str(l) for l in report.leaked_lines) or "-"
        print(f"{name:<14}{policy:<18}{len(report.confirmed):>6}"
              f"{len(report.exposed):>9}"
              f"{report.speculative_performs:>6}  {lines}")
        totals[policy] = totals.get(policy, 0) + len(report.leaked_lines)
    if len(policies) > 1:
        print()
        for policy in policies:
            print(f"{policy:<18} {totals.get(policy, 0)} leaked line(s)")
        if "x86" in totals and "370-SLFSoS-key" in totals:
            x86 = totals["x86"]
            key = totals["370-SLFSoS-key"]
            verdict = "OK" if key < x86 else "VIOLATION"
            print(f"370-SLFSoS-key < x86: {key} < {x86} — {verdict}")
            if key >= x86:
                return 1
    return 0


def cmd_record(args) -> int:
    from repro.workloads import (generate_warmup, generate_workload,
                                 get_profile)
    from repro.workloads.tracefile import save_workload
    profile = get_profile(args.name)
    traces = generate_workload(profile, args.cores, args.length, args.seed)
    warm = generate_warmup(profile, args.cores, args.length, args.seed)
    save_workload(args.path, traces, warmup=warm,
                  meta={"benchmark": args.name, "seed": args.seed,
                        "length": args.length, "cores": args.cores})
    total = sum(len(t) for t in traces)
    print(f"wrote {args.path}: {len(traces)} cores, "
          f"{total} instructions (+warm-up)")
    return 0


def cmd_replay(args) -> int:
    from repro.workloads.tracefile import TraceFileError, load_workload
    try:
        traces, warmup, meta = load_workload(args.path)
    except (OSError, TraceFileError) as exc:
        raise SystemExit(str(exc))
    obs = args.obs or bool(args.obs_out)
    warm = warmup if warmup else True
    if obs:
        from repro.obs.session import observe_run
        stats, report, _system = observe_run(traces, args.policy,
                                             warm_caches=warm)
    else:
        from repro.sim.system import simulate
        stats = simulate(traces, args.policy, warm_caches=warm)
    if args.json:
        print(stats.to_json(indent=2))
        if obs and args.obs_out:
            report.write_jsonl(args.obs_out)
        return 0
    total = stats.total
    origin = f" (recorded from {meta['benchmark']})" \
        if "benchmark" in meta else ""
    print(f"replayed {args.path}{origin} under {args.policy}:")
    print(f"  {stats.execution_cycles} cycles, "
          f"{total.retired_instructions} instructions")
    print(f"  forwarded {total.forwarded_pct:.2f}%  "
          f"gate stalls {total.gate_stalls_pct:.3f}%  "
          f"re-executed {total.reexecuted_pct:.3f}%")
    if obs:
        _emit_obs(report, stats, args.obs_out)
    return 0


def cmd_sweep(args) -> int:
    import json

    from repro.sweep import SweepJob, run_sweep
    from repro.sweep.runner import stderr_progress
    from repro.workloads.runner import normalized_times

    obs = args.obs or bool(args.obs_out)
    jobs = [SweepJob(name=name, policy=policy, cores=args.cores,
                     length=args.length, seed=args.seed, obs=obs,
                     checkpoint_every=args.checkpoint_every)
            for name in args.names for policy in POLICY_ORDER]
    outcome = run_sweep(jobs, workers=args.jobs, cache=not args.no_cache,
                        cache_dir=args.cache_dir,
                        progress=stderr_progress if args.verbose else None,
                        timeout=args.timeout, retries=args.retries)
    width = len(POLICY_ORDER)
    for i, name in enumerate(args.names):
        chunk = outcome.results[i * width:(i + 1) * width]
        results = dict(zip(POLICY_ORDER, chunk))
        ok = {p: r for p, r in results.items() if r is not None}
        # Normalization needs the x86 baseline cell; without it the
        # surviving cells are still printed, just in raw cycles.
        norm = normalized_times(ok) if "x86" in ok else {}
        print(f"{name}: execution time normalized to x86")
        for policy in POLICY_ORDER:
            cell = results[policy]
            if cell is None:
                err = outcome.errors[i * width + POLICY_ORDER.index(policy)]
                print(f"  {policy:16s} FAILED: {err['type']}: "
                      f"{err['message']}")
                continue
            ratio = f"{norm[policy]:5.3f}x" if policy in norm else "  n/a "
            line = f"  {policy:16s} {cell.cycles:9d} cycles ({ratio})"
            cell_obs = outcome.obs[i * width
                                   + POLICY_ORDER.index(policy)]
            if obs and cell_obs:
                gate = cell_obs.get("gate", {})
                line += (f"  [gate intervals: "
                         f"{gate.get('intervals', 0)}]")
            print(line)
    if args.obs_out:
        with open(args.obs_out, "w") as fh:
            for job, cell_obs in zip(jobs, outcome.obs):
                fh.write(json.dumps({"name": job.name,
                                     "policy": job.policy,
                                     "obs": cell_obs}) + "\n")
        print(f"wrote {args.obs_out}: {len(jobs)} per-cell obs records")
    if args.out:
        payload = {
            "jobs": [{"name": j.name, "policy": j.policy, "cores": j.cores,
                      "length": j.length, "seed": j.seed} for j in jobs],
            "cycles": [None if r is None else r.cycles
                       for r in outcome.results],
            "errors": outcome.errors,
            "failed": outcome.failed,
            "interrupted": outcome.interrupted,
            "simulated": outcome.simulated,
            "cached": outcome.cached,
            "mode": outcome.mode,
            "workers": outcome.workers,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.out}")
    if args.verbose:
        print(f"({outcome.simulated} simulated, {outcome.cached} cached, "
              f"{outcome.failed} failed, {outcome.mode} with "
              f"{outcome.workers} worker(s), {outcome.elapsed:.1f}s)",
              file=sys.stderr)
    return 1 if (outcome.failed or outcome.interrupted) else 0


def cmd_chaos(args) -> int:
    import json

    from repro.resilience import DEFAULT_CHAOS, FaultSpec, run_chaos

    spec = FaultSpec(noc_jitter=args.noc_jitter,
                     noc_jitter_prob=args.noc_jitter_prob,
                     evict_period=args.evict_period,
                     squash_period=args.squash_period,
                     sb_delay=args.sb_delay,
                     sb_delay_prob=args.sb_delay_prob)
    progress = (lambda msg: print(msg, file=sys.stderr, flush=True)) \
        if args.verbose else None
    report = run_chaos(trials=args.trials, seed=args.seed, spec=spec,
                       policies=tuple(args.policies or POLICY_ORDER),
                       progress=progress)
    print(report.summary())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import HttpApi, ServeService

    note = (lambda msg: print(msg, file=sys.stderr, flush=True)) \
        if args.verbose else None
    service = ServeService(
        shards=args.shards, shard_workers=args.shard_workers,
        queue_limit=args.queue_limit, timeout=args.timeout,
        retries=args.retries, backoff=args.backoff,
        stuck_after=args.stuck_after, cache=not args.no_cache,
        cache_dir=args.cache_dir, cache_max_bytes=args.cache_max_bytes,
        on_note=note)
    api = HttpApi(service, host=args.host, port=args.port)

    def ready(port: int) -> None:
        # Machine-parseable: the SIGTERM tests and the CI smoke read
        # the bound port from this line (--port 0 means "pick one").
        print(f"repro-serve listening on http://{args.host}:{port}",
              flush=True)

    asyncio.run(api.run(ready=ready, drain_timeout=args.drain_timeout))
    print("repro-serve drained and stopped", flush=True)
    return 0


def cmd_fleet_coordinator(args) -> int:
    import asyncio

    from repro.fleet import CoordinatorApi, FleetService

    note = (lambda msg: print(msg, file=sys.stderr, flush=True)) \
        if args.verbose else None
    service = FleetService(
        replicas=args.replicas,
        heartbeat_timeout=args.heartbeat_timeout,
        queue_limit=args.queue_limit,
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        node_timeout=args.node_timeout, poll_wait=args.poll_wait,
        cache_dir=args.cache_dir,
        persistent=args.cache_dir is not None,
        on_note=note)
    api = CoordinatorApi(service, host=args.host, port=args.port)

    def ready(port: int) -> None:
        # Machine-parseable, like the serve line: tests and the CI
        # smoke read the bound port from it (--port 0 = pick one).
        print(f"repro-fleet coordinator listening on "
              f"http://{args.host}:{port}", flush=True)

    asyncio.run(api.run(ready=ready, drain_timeout=args.drain_timeout))
    print("repro-fleet coordinator drained and stopped", flush=True)
    return 0


def cmd_fleet_worker(args) -> int:
    import asyncio
    import os

    from repro.fleet import FleetWorker
    from repro.serve import ServeService

    note = (lambda msg: print(msg, file=sys.stderr, flush=True)) \
        if args.verbose else None
    node_id = args.node_id or f"node-{os.getpid()}"
    service = ServeService(
        shards=args.shards, shard_workers=args.shard_workers,
        queue_limit=args.queue_limit, timeout=args.timeout,
        retries=args.retries, backoff=args.backoff,
        stuck_after=args.stuck_after, cache=not args.no_cache,
        cache_dir=args.cache_dir, cache_max_bytes=args.cache_max_bytes,
        on_note=note)
    worker = FleetWorker(service, args.coordinator, node_id=node_id,
                         host=args.host, port=args.port,
                         interval=args.heartbeat_interval)

    def ready(port: int) -> None:
        print(f"repro-fleet worker {node_id} listening on "
              f"http://{args.host}:{port}", flush=True)

    asyncio.run(worker.run(ready=ready,
                           drain_timeout=args.drain_timeout))
    print(f"repro-fleet worker {node_id} drained and stopped",
          flush=True)
    return 0


def cmd_fleet_status(args) -> int:
    import json

    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.url, timeout=args.http_timeout,
                         retries=args.retries)
    try:
        status, doc = client.get("/v1/fleet/status")
    except ServeError as exc:
        raise SystemExit(str(exc))
    if status != 200:
        raise SystemExit(f"{args.url}/v1/fleet/status answered "
                         f"{status}: {doc}")
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        nodes = doc.get("nodes", {})
        live = sum(bool(n.get("alive")) for n in nodes.values())
        print(f"fleet: {live}/{len(nodes)} node(s) live, "
              f"replicas={doc.get('replicas')}")
        for node_id, n in sorted(nodes.items()):
            state = "LIVE" if n.get("alive") else "DEAD"
            print(f"  {node_id:<20} {state:<4} {n.get('state', '?'):<9} "
                  f"inflight={n.get('inflight', 0)} "
                  f"requeues={n.get('requeues', 0)} "
                  f"completed={n.get('completed', 0)} "
                  f"hb_age={n.get('heartbeat_age_s', '?')}s "
                  f"{n.get('url', '')}")
        jobs = doc.get("jobs", {})
        print(f"jobs: {jobs.get('submitted', 0)} submitted, "
              f"{jobs.get('executed', 0)} executed, "
              f"{jobs.get('cache_hit', 0)} cache hits, "
              f"{jobs.get('requeues', 0)} requeues, "
              f"{jobs.get('inflight', 0)} in flight")
        rep = doc.get("replication", {})
        print(f"replication: {rep.get('puts', 0)} puts "
              f"({rep.get('put_failures', 0)} failed), "
              f"{rep.get('read_repairs', 0)} read repairs, "
              f"{rep.get('anti_entropy_pushes', 0)} anti-entropy pushes")
    nodes = doc.get("nodes", {})
    return 0 if any(n.get("alive") for n in nodes.values()) else 1


def _parse_submit_token(token: str, args) -> Dict:
    """``bench:NAME[:POLICY]`` / ``litmus:NAME[:MODEL+MODEL...]`` /
    ``leak:GADGET[:POLICY+POLICY...]`` / ``synth:SPACE[:CHUNK/CHUNKS]``
    → a job-request dict."""
    parts = token.split(":")
    if parts[0] == "synth":
        import re
        if len(parts) < 2 or len(parts) > 3 or not parts[1]:
            raise SystemExit(f"bad synth spec {token!r} "
                             f"(synth:SPACE[:CHUNK/CHUNKS], e.g. "
                             f"synth:2x3x2:0/8)")
        job = {"kind": "synth", "bounds": _parse_space(parts[1]).to_dict()}
        if len(parts) == 3:
            match = re.fullmatch(r"(\d+)/(\d+)", parts[2])
            if not match:
                raise SystemExit(f"bad synth chunk {parts[2]!r} "
                                 f"(want CHUNK/CHUNKS, e.g. 0/8)")
            job["chunk"] = int(match.group(1))
            job["chunks"] = int(match.group(2))
        return job
    if parts[0] == "leak":
        if len(parts) < 2 or len(parts) > 3 or not parts[1]:
            raise SystemExit(f"bad leak spec {token!r} "
                             f"(leak:GADGET[:POLICY+POLICY...])")
        job = {"kind": "leak", "gadget": parts[1]}
        if len(parts) == 3:
            job["policies"] = parts[2].split("+")
        return job
    if parts[0] == "litmus":
        if len(parts) < 2 or len(parts) > 3 or not parts[1]:
            raise SystemExit(f"bad litmus spec {token!r} "
                             f"(litmus:NAME[:MODEL+MODEL...])")
        job = {"kind": "litmus", "name": parts[1]}
        if len(parts) == 3:
            job["models"] = parts[2].split("+")
        return job
    if parts[0] == "bench":
        if len(parts) < 2 or len(parts) > 3 or not parts[1]:
            raise SystemExit(f"bad bench spec {token!r} "
                             f"(bench:NAME[:POLICY])")
        job = {"kind": "bench", "name": parts[1],
               "policy": parts[2] if len(parts) == 3 else args.policy,
               "cores": args.cores, "seed": args.seed}
        if args.length is not None:
            job["length"] = args.length
        return job
    raise SystemExit(f"job spec {token!r} must start with "
                     f"'bench:', 'litmus:', 'leak:' or 'synth:'")


def cmd_submit(args) -> int:
    import json

    from repro.serve import ServeClient, ServeError

    jobs: List[Dict] = []
    if args.file:
        with open(args.file) as fh:
            loaded = json.load(fh)
        if isinstance(loaded, dict):
            loaded = loaded.get("jobs", [loaded])
        if not isinstance(loaded, list):
            raise SystemExit(f"{args.file}: expected a list of job "
                             f"objects (or {{'jobs': [...]}})")
        jobs.extend(loaded)
    for token in args.specs:
        jobs.append(_parse_submit_token(token, args))
    if args.priority is not None:
        for job in jobs:
            job.setdefault("priority", args.priority)
    if not jobs:
        raise SystemExit("nothing to submit (give specs or --file)")

    client = ServeClient(args.url, timeout=args.http_timeout,
                         retries=args.http_retries,
                         client_id=args.client_id)
    try:
        batch = client.submit_batch(jobs)
    except ServeError as exc:
        raise SystemExit(str(exc))
    docs = batch["jobs"]
    print(f"submitted {len(docs)} job(s): {batch['accepted']} accepted, "
          f"{batch['rejected']} rejected, {batch['invalid']} invalid")
    for doc in docs:
        if doc["state"] == "invalid":
            print(f"  INVALID: {doc['error']['message']}")
        elif doc["state"] == "rejected":
            print(f"  {doc['id']} REJECTED: "
                  f"{doc['rejection']['message']}")
        else:
            tag = " [cache]" if doc.get("cache_hit") else ""
            print(f"  {doc['id']} {doc['state']}{tag}")

    failures = batch["rejected"] + batch["invalid"]
    if args.wait:
        ids = [doc["id"] for doc in docs
               if doc["state"] in ("queued", "running", "done")]
        try:
            finished = client.wait_all(ids, deadline=args.deadline)
        except ServeError as exc:
            raise SystemExit(str(exc))
        docs = [finished.get(doc.get("id"), doc) for doc in docs]
        for doc in docs:
            if doc.get("state") == "failed":
                failures += 1
                print(f"  {doc['id']} FAILED: "
                      f"{doc['error']['type']}: {doc['error']['message']}")
        done = sum(doc.get("state") == "done" for doc in docs)
        print(f"finished: {done} done, "
              f"{sum(d.get('state') == 'failed' for d in docs)} failed")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"jobs": docs}, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 1 if failures else 0


def cmd_poll(args) -> int:
    import json

    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.url, timeout=args.http_timeout,
                         retries=args.http_retries)
    try:
        if args.job_id == "healthz":
            print(json.dumps(client.healthz(), indent=2, sort_keys=True))
            return 0
        if args.job_id == "metrics":
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            return 0
        status, doc = client.job(args.job_id, wait=args.wait)
    except ServeError as exc:
        raise SystemExit(str(exc))
    print(json.dumps(doc, indent=2, sort_keys=True))
    if status != 200:
        return 1
    return 0 if doc["state"] in ("done", "queued", "running") else 1


def cmd_cache(args) -> int:
    from repro.sweep.cache import ResultCache

    cache = ResultCache(args.cache_dir, max_bytes=args.max_bytes)
    stats = cache.stats()
    print(f"cache {stats['directory']}: {stats['entries']} entries, "
          f"{stats['total_bytes']} bytes"
          + (f" (bound: {stats['max_bytes']})"
             if stats["max_bytes"] is not None else ""))
    if args.gc:
        if cache.max_bytes is None:
            raise SystemExit("cache --gc needs --max-bytes (or "
                             "REPRO_SWEEP_CACHE_MAX)")
        removed, freed = cache.gc()
        print(f"gc: removed {removed} entry(ies), freed {freed} bytes")
    return 0


def _changed_files(base: str) -> "Tuple[List[str], List[str]]":
    """Python files differing from ``base`` (committed, staged or
    unstaged) plus untracked ones — the ``lint --changed`` file set.

    Returns ``(existing, missing)``: git names files that were deleted
    or renamed away since ``base``, which no longer exist on disk and
    cannot be linted — the caller skips those with a note rather than
    erroring.  Names are resolved against the repository root, not the
    current directory, so ``--changed`` works from any subdirectory.
    """
    import os
    import subprocess
    try:
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True)
        diff = subprocess.run(
            ["git", "diff", "--name-only", base],
            capture_output=True, text=True, check=True)
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        raise SystemExit(f"--changed needs a git checkout with "
                         f"{base!r} resolvable: {detail.strip()}")
    root = toplevel.stdout.strip()
    names = sorted({
        os.path.abspath(os.path.join(root, name))
        for name in (diff.stdout.splitlines()
                     + untracked.stdout.splitlines())
        if name.endswith(".py")})
    existing = [name for name in names if os.path.isfile(name)]
    missing = [name for name in names if not os.path.isfile(name)]
    return existing, missing


def cmd_lint(args) -> int:
    import os

    from repro.lint import registered_rules, render_human, render_json, \
        run_lint

    if args.rules:
        for rule_id, rule in sorted(registered_rules().items()):
            print(f"{rule_id} [{rule.scope}]: {rule.summary}")
            print(f"    {rule.rationale}")
        return 0

    failed = False

    paths = args.paths or [os.path.dirname(os.path.abspath(
        sys.modules["repro"].__file__))]
    only_files = None
    if args.changed:
        existing, missing = _changed_files(args.base)
        for path in missing:
            print(f"lint: skipping {path} "
                  f"(renamed or deleted since {args.base})")
        only_files = set(existing)
    try:
        report = run_lint(paths, rules=args.rule or None,
                          only_files=only_files)
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(render_human(report))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(render_json(report) + "\n")
        print(f"wrote {args.json}")
    if not report.ok:
        failed = True
    if args.strict:
        protected = report.suppressions_in(("sim", "cpu", "core"))
        for suppression in protected:
            print(f"{suppression.path}:{suppression.line}: strict: "
                  f"suppression not permitted in sim/cpu/core "
                  f"({', '.join(sorted(suppression.rules))})")
        if protected:
            failed = True

    if args.litmus or args.random:
        from repro.lint.memory_model import (cross_check_battery,
                                             cross_check_random,
                                             find_races)
        result = cross_check_battery()
        print(f"litmus cross-check: battery {result.programs_checked} "
              f"programs ({result.programs_skipped} rmw skipped), "
              f"{len(result.mismatches)} mismatches")
        if args.random:
            rand = cross_check_random(args.random, seed=args.seed)
            result.programs_checked += rand.programs_checked
            result.mismatches.extend(rand.mismatches)
            print(f"litmus cross-check: {rand.programs_checked} random "
                  f"programs (seed {args.seed}), "
                  f"{len(rand.mismatches)} mismatches")
        for mismatch in result.mismatches:
            print(f"  MISMATCH {mismatch}")
        races = []
        for case in ALL_CASES + EXTRA_CASES:
            try:
                race_report = find_races(case.program)
            except NotImplementedError:
                continue
            for race in race_report.races:
                races.append((case.program.name, race))
        print(f"store-atomicity races in the battery: {len(races)}")
        for name, race in races:
            print(f"  {name}: {race.shape} race, x86-allowed / "
                  f"370-forbidden: {race.outcome}")
        if args.litmus_json:
            import json
            payload = {
                "ok": result.ok,
                "programs_checked": result.programs_checked,
                "programs_skipped": result.programs_skipped,
                "mismatches": result.mismatches,
                "races": [{"program": name, "shape": race.shape,
                           "outcome": str(race.outcome),
                           "cycle": [f"{e.src}--{e.kind}-->{e.dst}"
                                     for e in race.witness.edges]}
                          for name, race in races],
            }
            with open(args.litmus_json, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"wrote {args.litmus_json}")
        if not result.ok:
            failed = True

    return 1 if failed else 0


def _parse_space(token: str):
    """``TxOxA[f][r][a][tN]`` → :class:`SynthBounds` (e.g. ``2x3x2``,
    ``2x3x2f`` with fences, ``2x3x2rf`` with locked RMWs and fences,
    ``2x2x2a`` with acquire/release/lwfence, ``3x3x2t6`` capped at 6
    events total)."""
    import re

    from repro.synth import SynthBounds
    match = re.fullmatch(r"(\d+)x(\d+)x(\d+)([fra]*)(?:t(\d+))?", token)
    flags = match.group(4) if match else ""
    if not match or len(set(flags)) != len(flags):
        raise SystemExit(f"bad space {token!r} (want THREADSxOPSxADDRS"
                         f"[f][r][a][tN], e.g. 2x3x2, 2x3x2rf or "
                         f"3x3x2t6)")
    try:
        return SynthBounds(threads=int(match.group(1)),
                           max_ops=int(match.group(2)),
                           addresses=int(match.group(3)),
                           fences="f" in flags,
                           rmws="r" in flags,
                           acqrel="a" in flags,
                           max_total=int(match.group(5) or 0))
    except ValueError as exc:
        raise SystemExit(f"bad space {token!r}: {exc}")


def _parse_pairs(text: str) -> List[List[str]]:
    from repro.synth.space import LATTICE
    pairs = []
    for token in text.split(","):
        parts = token.split(":")
        if len(parts) != 2 or not all(p in LATTICE for p in parts):
            raise SystemExit(
                f"bad model pair {token!r} (want STRONG:WEAK from "
                f"{'/'.join(LATTICE)}, e.g. SC:x86)")
        if LATTICE.index(parts[0]) >= LATTICE.index(parts[1]):
            raise SystemExit(f"pair {token!r} is not (stronger:weaker)")
        pairs.append(parts)
    return pairs


def _synth_via_service(url: str, bounds, pairs: List[List[str]],
                       chunks: int, args):
    """Scatter one space as ``chunks`` synth jobs on a running service
    and merge the chunk results."""
    from repro.serve import ServeClient, ServeError
    from repro.synth import SynthResult, merge_results

    client = ServeClient(url, timeout=args.http_timeout,
                         retries=args.http_retries)
    jobs = [{"kind": "synth", "bounds": bounds.to_dict(), "pairs": pairs,
             "chunk": chunk, "chunks": chunks}
            for chunk in range(chunks)]
    try:
        batch = client.submit_batch(jobs)
        ids = [doc["id"] for doc in batch["jobs"]
               if doc["state"] in ("queued", "running", "done")]
        if len(ids) != len(jobs):
            bad = [doc for doc in batch["jobs"]
                   if doc["state"] not in ("queued", "running", "done")]
            raise SystemExit(f"service rejected {len(bad)} synth "
                             f"job(s): {bad[0].get('error') or bad[0]}")
        finished = client.wait_all(ids, deadline=args.deadline)
    except ServeError as exc:
        raise SystemExit(str(exc))
    payloads = []
    for job_id in ids:
        doc = finished[job_id]
        if doc.get("state") != "done":
            raise SystemExit(f"synth job {job_id} {doc.get('state')}: "
                             f"{doc.get('error')}")
        payloads.append(SynthResult.from_dict(doc["result"]))
    return merge_results(payloads)


def cmd_zoo(args) -> int:
    import json
    import random

    from repro.litmus.checker import random_program
    from repro.models import model_table
    from repro.models.lattice import check_lattice
    from repro.synth.oracle import triple_check

    header = ("model", "title", "relaxations", "formalizations",
              "stronger than")
    rows = [header] + [tuple(str(cell) for cell in row)
                       for row in model_table()]
    widths = [max(len(row[i]) for row in rows)
              for i in range(len(header))]
    print("the memory-model zoo (strongest first):")
    for row in rows:
        print("  " + "  ".join(cell.ljust(width) for cell, width
                               in zip(row, widths)).rstrip())
    print()

    report = check_lattice()
    print(report.summary())
    for violation in report.violations:
        print(f"  {violation.program}: {violation.strong} allows "
              f"{', '.join(violation.outcomes)} which "
              f"{violation.weak} forbids")

    oracle_reports = []
    if args.random:
        rng = random.Random(args.seed)
        programs = [random_program(rng, name=f"zoo-random-{i}",
                                   allow_fences=True, allow_rmws=True,
                                   allow_acqrel=True)
                    for i in range(args.random)]
        oracle_reports = [triple_check(program) for program in programs]
        disagreements = [r for r in oracle_reports if not r.agree]
        print(f"triple-oracle cross-check: {len(programs)} random "
              f"programs (seed {args.seed}, rmw/acq-rel vocabulary) — "
              f"{len(disagreements)} disagreements")
        for r in disagreements:
            print("\n".join(r.mismatches))

    if args.json:
        payload = {
            "models": [dict(zip(("name", "title", "relaxations",
                                 "formalizations", "stronger_than"), row))
                       for row in model_table()],
            "lattice": report.to_dict(),
            "random": {"programs": args.random, "seed": args.seed,
                       "reports": [r.to_dict() for r in oracle_reports]},
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    ok = report.ok and all(r.agree for r in oracle_reports)
    return 0 if ok else 1


def cmd_synth(args) -> int:
    import json
    import os
    import time

    from repro.litmus.battery import EXTRA_CASES as _EXTRA
    from repro.litmus.program import canonical_key
    from repro.litmus.tests import ALL_CASES as _ALL
    from repro.synth import (battery_duplicates, case_name,
                             pool_distinguishers, search, triple_check,
                             write_generated_module)

    spaces = [_parse_space(token) for token in args.spaces.split(",")]
    if args.pairs:
        pairs = _parse_pairs(args.pairs)
    else:
        from repro.synth.search import MODEL_PAIRS
        pairs = [list(pair) for pair in MODEL_PAIRS]
    hand_cases = _ALL + _EXTRA
    battery_keys = {canonical_key(case.program): case.program.name
                    for case in hand_cases}

    results = []
    started = time.monotonic()
    for bounds in spaces:
        if args.url:
            result = _synth_via_service(args.url, bounds, pairs,
                                        args.chunks, args)
        else:
            result = search(bounds,
                            pairs=[tuple(p) for p in pairs],
                            limit=args.limit)
        results.append(result)
        print(f"synth {bounds.describe()}: {result.enumerated} programs, "
              f"{result.judged} judged, {result.hits} hits, "
              f"{result.distinct} distinct"
              + (f", {len(result.lattice_errors)} LATTICE ERRORS"
                 if result.lattice_errors else ""))
    elapsed = time.monotonic() - started

    pooled = pool_distinguishers(results)
    rediscovered = [d for d in pooled if d.key in battery_keys]
    fresh = [d for d in pooled if d.key not in battery_keys]
    print(f"distinguishers: {len(pooled)} distinct "
          f"({len(rediscovered)} rediscover battery tests, "
          f"{len(fresh)} new) in {elapsed:.1f}s")
    for dist in rediscovered:
        print(f"  known {battery_keys[dist.key]} "
              f"[{dist.pair[0]} vs {dist.pair[1]}] key={dist.key}")
    for dist in fresh:
        print(f"  NEW {case_name(dist)} "
              f"[{dist.pair[0]} vs {dist.pair[1]}] "
              f"{dist.events} events (from {dist.events_before})")

    duplicates = battery_duplicates(hand_cases)
    for key, names in sorted(duplicates.items()):
        print(f"  battery duplicate: {', '.join(names)} share "
              f"canonical key {key}")

    mismatches: List[str] = []
    if not args.no_check:
        for dist in pooled:
            report = triple_check(dist.program)
            mismatches.extend(report.mismatches)
        print(f"oracle cross-check: {len(pooled)} programs x 3 oracles, "
              f"{len(mismatches)} mismatches")
        for mismatch in mismatches:
            print(f"  ORACLE MISMATCH {mismatch}")

    lattice_errors = [err for result in results
                      for err in result.lattice_errors]
    failed = bool(mismatches or lattice_errors)

    if args.json:
        payload = {
            "spaces": [{"bounds": r.bounds.to_dict(),
                        "enumerated": r.enumerated, "judged": r.judged,
                        "hits": r.hits, "distinct": r.distinct,
                        "dedupe_ratio": round(r.dedupe_ratio, 4)}
                       for r in results],
            "pairs": pairs,
            "elapsed_sec": round(elapsed, 3),
            "distinct": len(pooled),
            "rediscovered": sorted(battery_keys[d.key]
                                   for d in rediscovered),
            "new": [d.to_dict() for d in fresh],
            "battery_duplicates": {k: v for k, v in duplicates.items()},
            "oracle_mismatches": mismatches,
            "lattice_errors": lattice_errors,
            "ok": not failed,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if args.promote:
        if args.no_check:
            raise SystemExit("--promote requires the oracle check "
                             "(drop --no-check)")
        if failed:
            raise SystemExit("refusing to promote with oracle "
                             "mismatches or lattice errors")
        out = args.out
        if out is None:
            import repro.litmus as _litmus_pkg
            out = os.path.join(
                os.path.dirname(os.path.abspath(_litmus_pkg.__file__)),
                "generated.py")
        write_generated_module(fresh, out)
        promoted = len({dist.key for dist in fresh})
        print(f"promoted {promoted} synthesized test(s) "
              f"({len(fresh)} pair witnesses) -> {out}")

    return 1 if failed else 0


# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speculative Enforcement of Store Atomicity "
                    "(MICRO 2020) — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="available tests/benchmarks") \
        .set_defaults(func=cmd_list)

    p = sub.add_parser("litmus", help="enumerate a litmus test")
    p.add_argument("name")
    p.add_argument("-m", "--models", nargs="*", choices=MODELS,
                   help="models to enumerate (default: all)")
    p.set_defaults(func=cmd_litmus)

    from repro.models import model_names
    p = sub.add_parser("explain", help="happens-before explanation")
    p.add_argument("name")
    p.add_argument("-m", "--model", default="370",
                   choices=model_names(axiomatic_only=True))
    p.add_argument("-w", "--witness", nargs="+", default=[],
                   help="witness conditions, e.g. r0_rx=1 mem_x=1")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("compare", help="370 vs x86 ConsistencyChecker")
    p.add_argument("name")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("run-file", help="run a litmus test from a file")
    p.add_argument("path")
    p.add_argument("-m", "--models", nargs="*", choices=MODELS)
    p.set_defaults(func=cmd_run_file)

    p = sub.add_parser("sample", help="litmus7-style sampling")
    p.add_argument("name")
    p.add_argument("-m", "--model", default="x86", choices=MODELS)
    p.add_argument("-n", "--runs", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_sample)

    p = sub.add_parser("bench", help="run one benchmark profile")
    p.add_argument("name")
    p.add_argument("-p", "--policy", default="370-SLFSoS-key",
                   choices=POLICY_ORDER)
    p.add_argument("-c", "--cores", type=int, default=8)
    p.add_argument("-l", "--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="machine-readable stats (SystemStats.to_json)")
    p.add_argument("--obs", action="store_true",
                   help="attach the observability layer and print a "
                        "top-stalls summary")
    p.add_argument("--obs-out", default=None, metavar="PATH",
                   help="also write the obs metrics as JSONL "
                        "(implies --obs)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "trace",
        help="run one benchmark with full observability and emit a "
             "Perfetto-loadable Chrome trace + JSONL metrics")
    p.add_argument("name")
    p.add_argument("-p", "--policy", default="370-SLFSoS-key",
                   choices=POLICY_ORDER)
    p.add_argument("-c", "--cores", type=int, default=8)
    p.add_argument("-l", "--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--out", default=None,
                   help="Chrome trace JSON path "
                        "(default: NAME-POLICY.trace.json)")
    p.add_argument("--metrics", default=None,
                   help="metrics JSONL path "
                        "(default: NAME-POLICY.metrics.jsonl)")
    p.add_argument("--sample-interval", type=int, default=64,
                   help="occupancy sampling period in cycles")
    p.add_argument("--top", type=int, default=5,
                   help="gate intervals shown in the top-stalls summary")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "leak",
        help="run the Spectre gadget battery with taint-based leakage "
             "tracking and report transient leaks per policy")
    p.add_argument("gadgets", nargs="*", metavar="gadget",
                   help="gadget names (default: all)")
    p.add_argument("-p", "--policy", default="all",
                   choices=("all",) + tuple(POLICY_ORDER))
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the per-run leakage reports as JSON")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="also emit a Perfetto trace with the leakage "
                        "track per gadget×policy run")
    p.set_defaults(func=cmd_leak)

    p = sub.add_parser("record", help="save a workload to a trace file")
    p.add_argument("name")
    p.add_argument("path")
    p.add_argument("-c", "--cores", type=int, default=8)
    p.add_argument("-l", "--length", type=int, default=3000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("replay", help="run a saved trace file")
    p.add_argument("path")
    p.add_argument("-p", "--policy", default="370-SLFSoS-key",
                   choices=POLICY_ORDER)
    p.add_argument("--json", action="store_true",
                   help="machine-readable stats (SystemStats.to_json)")
    p.add_argument("--obs", action="store_true",
                   help="attach the observability layer and print a "
                        "top-stalls summary")
    p.add_argument("--obs-out", default=None, metavar="PATH",
                   help="also write the obs metrics as JSONL "
                        "(implies --obs)")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "sweep",
        help="benchmarks under all five configurations "
             "(parallel across processes, results cached on disk)")
    p.add_argument("names", nargs="+", metavar="name")
    p.add_argument("-c", "--cores", type=int, default=8)
    p.add_argument("-l", "--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-j", "--jobs", type=int, default=None,
                   help="worker processes (default: adaptive — a timed "
                        "probe of the first cell decides serial vs a "
                        "pool of up to $REPRO_WORKERS/CPU-count "
                        "workers)")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N",
                   help="checkpoint each cell every ~N cycles; failed "
                        "or killed cells resume from the last snapshot "
                        "on retry instead of restarting")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the result cache")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: "
                        "$REPRO_SWEEP_CACHE or .sweep-cache)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="progress and cache statistics on stderr")
    p.add_argument("--obs", action="store_true",
                   help="carry per-cell observability summaries "
                        "(histograms, gate intervals) in the results")
    p.add_argument("--obs-out", default=None, metavar="PATH",
                   help="write per-cell obs summaries as JSONL "
                        "(implies --obs)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-job wall-clock budget in seconds; a cell "
                        "that blows it is a structured failure, not a "
                        "hung sweep")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts for failed cells (with "
                        "exponential backoff between rounds)")
    p.add_argument("-o", "--out", default=None, metavar="PATH",
                   help="write the full outcome, including per-cell "
                        "error payloads, as JSON")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "chaos",
        help="conformance under deterministic fault injection: the "
             "litmus battery with NoC jitter, forced evictions, spurious "
             "squashes and delayed SB drains — outcomes must stay within "
             "the axiomatic models")
    p.add_argument("--trials", type=int, default=25,
                   help="fault seeds per (test, policy) cell")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-p", "--policies", nargs="*", choices=POLICY_ORDER,
                   help="configurations to test (default: all five)")
    p.add_argument("--noc-jitter", type=int,
                   default=DEFAULT_CHAOS_SPEC.noc_jitter)
    p.add_argument("--noc-jitter-prob", type=float,
                   default=DEFAULT_CHAOS_SPEC.noc_jitter_prob)
    p.add_argument("--evict-period", type=int,
                   default=DEFAULT_CHAOS_SPEC.evict_period)
    p.add_argument("--squash-period", type=int,
                   default=DEFAULT_CHAOS_SPEC.squash_period)
    p.add_argument("--sb-delay", type=int,
                   default=DEFAULT_CHAOS_SPEC.sb_delay)
    p.add_argument("--sb-delay-prob", type=float,
                   default=DEFAULT_CHAOS_SPEC.sb_delay_prob)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full chaos report as JSON")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="per-cell progress on stderr")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="long-lived batch simulation service: HTTP JSON API over "
             "a sharded worker pool with admission control and a "
             "persistent result store (docs/SERVICE.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8377,
                   help="TCP port (0 = pick a free one; the bound port "
                        "is printed on stdout)")
    p.add_argument("--shards", type=int, default=2,
                   help="worker-pool shards (jobs are sharded by "
                        "content key)")
    p.add_argument("--shard-workers", type=int, default=1,
                   help="processes per shard")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="per-shard queue depth before admission "
                        "control rejects (429)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-job wall-clock budget (SIGALRM, as in "
                        "'sweep')")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts for failed jobs")
    p.add_argument("--backoff", type=float, default=0.5,
                   help="base retry backoff in seconds (exponential)")
    p.add_argument("--stuck-after", type=float, default=None,
                   metavar="SEC",
                   help="watchdog: recycle a shard whose in-flight job "
                        "exceeds this many wall-clock seconds")
    p.add_argument("--no-cache", action="store_true",
                   help="in-memory results only (no persistent store)")
    p.add_argument("--cache-dir", default=None,
                   help="result store directory (default: "
                        "$REPRO_SWEEP_CACHE or .sweep-cache — shared "
                        "with 'repro sweep')")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   help="bound the persistent store (LRU pruning)")
    p.add_argument("--drain-timeout", type=float, default=None,
                   metavar="SEC",
                   help="on SIGTERM, give up draining after this long "
                        "(default: wait for the backlog)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="operational notes on stderr")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="multi-node serve fleet: coordinator, worker nodes, "
             "heartbeat failover, replicated results "
             "(docs/SERVICE.md)")
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    fp = fleet_sub.add_parser(
        "coordinator",
        help="route jobs across registered workers with failover "
             "and K-way result replication")
    fp.add_argument("--host", default="127.0.0.1")
    fp.add_argument("--port", type=int, default=8378,
                    help="TCP port (0 = pick a free one; the bound "
                         "port is printed on stdout)")
    fp.add_argument("--replicas", type=int, default=2,
                    help="ring owners each result is written to")
    fp.add_argument("--heartbeat-timeout", type=float, default=3.0,
                    metavar="SEC",
                    help="declare a node dead after this long without "
                         "a heartbeat")
    fp.add_argument("--queue-limit", type=int, default=256,
                    help="fleet-wide in-flight job bound before 429s")
    fp.add_argument("--quota-rate", type=float, default=0.0,
                    help="per-client submissions/sec (0 = no quotas)")
    fp.add_argument("--quota-burst", type=int, default=0,
                    help="per-client burst bucket size")
    fp.add_argument("--node-timeout", type=float, default=30.0,
                    help="per-RPC timeout talking to workers")
    fp.add_argument("--poll-wait", type=float, default=5.0,
                    help="node-side long-poll seconds per round trip")
    fp.add_argument("--cache-dir", default=None,
                    help="persist the coordinator's result tier here "
                         "(default: memory only; replicas live on "
                         "the nodes)")
    fp.add_argument("--drain-timeout", type=float, default=None,
                    metavar="SEC")
    fp.add_argument("-v", "--verbose", action="store_true",
                    help="operational notes on stderr")
    fp.set_defaults(func=cmd_fleet_coordinator)

    fp = fleet_sub.add_parser(
        "worker",
        help="one serve node that registers with a coordinator and "
             "heartbeats its health")
    fp.add_argument("--coordinator", default="http://127.0.0.1:8378",
                    help="coordinator base URL")
    fp.add_argument("--node-id", default=None,
                    help="stable node identity (default: node-<pid>)")
    fp.add_argument("--host", default="127.0.0.1")
    fp.add_argument("--port", type=int, default=0,
                    help="TCP port (default 0 = pick a free one)")
    fp.add_argument("--heartbeat-interval", type=float, default=1.0,
                    metavar="SEC")
    fp.add_argument("--shards", type=int, default=2)
    fp.add_argument("--shard-workers", type=int, default=1)
    fp.add_argument("--queue-limit", type=int, default=64)
    fp.add_argument("--timeout", type=float, default=None, metavar="SEC",
                    help="per-job wall-clock budget (SIGALRM)")
    fp.add_argument("--retries", type=int, default=1)
    fp.add_argument("--backoff", type=float, default=0.5)
    fp.add_argument("--stuck-after", type=float, default=None,
                    metavar="SEC")
    fp.add_argument("--no-cache", action="store_true")
    fp.add_argument("--cache-dir", default=None,
                    help="this node's result store directory — give "
                         "each node its own so replication, not a "
                         "shared filesystem, carries results")
    fp.add_argument("--cache-max-bytes", type=int, default=None)
    fp.add_argument("--drain-timeout", type=float, default=None,
                    metavar="SEC")
    fp.add_argument("-v", "--verbose", action="store_true",
                    help="operational notes on stderr")
    fp.set_defaults(func=cmd_fleet_worker)

    fp = fleet_sub.add_parser(
        "status",
        help="node liveness, in-flight jobs, and replication "
             "counters from a running coordinator")
    fp.add_argument("--url", default="http://127.0.0.1:8378")
    fp.add_argument("--json", action="store_true",
                    help="print the raw status document")
    fp.add_argument("--http-timeout", type=float, default=30.0)
    fp.add_argument("--retries", dest="retries", type=int, default=2,
                    help="client retries on 429/503/connection reset")
    fp.set_defaults(func=cmd_fleet_status)

    p = sub.add_parser(
        "submit",
        help="submit jobs to a running 'repro serve' over HTTP")
    p.add_argument("specs", nargs="*", metavar="SPEC",
                   help="bench:NAME[:POLICY], "
                        "litmus:NAME[:MODEL+MODEL...], "
                        "leak:GADGET[:POLICY+...] or "
                        "synth:SPACE[:CHUNK/CHUNKS]")
    p.add_argument("--file", default=None, metavar="PATH",
                   help="JSON file with a list of job objects "
                        "(or {'jobs': [...]})")
    p.add_argument("--url", default="http://127.0.0.1:8377")
    p.add_argument("-p", "--policy", default="370-SLFSoS-key",
                   choices=POLICY_ORDER,
                   help="policy for bench specs without one")
    p.add_argument("-c", "--cores", type=int, default=8)
    p.add_argument("-l", "--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--priority", type=int, default=None,
                   help="queue priority (lower runs earlier)")
    p.add_argument("--wait", action="store_true",
                   help="poll every submitted job to completion")
    p.add_argument("--deadline", type=float, default=600.0,
                   help="--wait gives up after this many seconds")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the final job documents as JSON")
    p.add_argument("--http-timeout", type=float, default=60.0)
    p.add_argument("--http-retries", type=int, default=2,
                   help="client retries on 429/503 (honouring "
                        "Retry-After) and reset GET polls")
    p.add_argument("--client-id", default=None,
                   help="X-Client-Id for per-client fleet quotas")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "poll",
        help="query one job (or 'healthz' / 'metrics') from a running "
             "'repro serve'")
    p.add_argument("job_id", metavar="JOB_ID")
    p.add_argument("--url", default="http://127.0.0.1:8377")
    p.add_argument("--wait", type=float, default=None, metavar="SEC",
                   help="long-poll up to SEC seconds for completion")
    p.add_argument("--http-timeout", type=float, default=90.0)
    p.add_argument("--http-retries", type=int, default=2,
                   help="client retries on 429/503 (honouring "
                        "Retry-After) and reset GET polls")
    p.set_defaults(func=cmd_poll)

    p = sub.add_parser(
        "cache",
        help="sweep/serve result-cache statistics and LRU garbage "
             "collection")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_SWEEP_CACHE "
                        "or .sweep-cache)")
    p.add_argument("--gc", action="store_true",
                   help="prune least-recently-used entries down to "
                        "--max-bytes")
    p.add_argument("--max-bytes", type=int, default=None,
                   help="size bound for --gc (default: "
                        "$REPRO_SWEEP_CACHE_MAX)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "lint",
        help="static determinism/zero-overhead discipline analysis "
             "plus the herd-style litmus relation classifier "
             "(docs/STATIC_ANALYSIS.md)")
    p.add_argument("paths", nargs="*", metavar="path",
                   help="files or directories (default: the installed "
                        "repro package)")
    p.add_argument("--strict", action="store_true",
                   help="also fail on suppression comments inside "
                        "sim/cpu/core")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the machine-readable report as JSON")
    p.add_argument("--rule", action="append", default=None, metavar="ID",
                   help="run only this rule (repeatable)")
    p.add_argument("--rules", action="store_true",
                   help="list the registered rules and exit")
    p.add_argument("--changed", action="store_true",
                   help="restrict discipline rules to files differing "
                        "from --base (fast pre-commit mode)")
    p.add_argument("--base", default="main",
                   help="git ref for --changed (default: main)")
    p.add_argument("--litmus", action="store_true",
                   help="cross-check the static litmus classifier "
                        "against litmus/axiomatic.py on the battery and "
                        "report store-atomicity races")
    p.add_argument("--random", type=int, default=0, metavar="N",
                   help="also cross-check N seeded random programs "
                        "(implies --litmus)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for --random program generation")
    p.add_argument("--litmus-json", default=None, metavar="PATH",
                   help="write the cross-check/race report as JSON")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "zoo",
        help="the memory-model registry: print the model table, "
             "machine-check the conformance lattice over the battery, "
             "and optionally triple-oracle random RMW/acquire-release "
             "programs (docs/MEMORY_MODELS.md)")
    p.add_argument("--random", type=int, default=0, metavar="N",
                   help="also triple-oracle N seeded random programs "
                        "drawn with the full event vocabulary")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for --random program generation")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the model table + lattice/oracle report "
                        "as JSON")
    p.set_defaults(func=cmd_zoo)

    p = sub.add_parser(
        "synth",
        help="exhaustive bounded litmus synthesis: enumerate small "
             "programs, keep model-pair distinguishers, minimize, "
             "triple-check, optionally promote (docs/SYNTHESIS.md)")
    p.add_argument("--spaces", default="2x3x2", metavar="SPACES",
                   help="comma list of THREADSxOPSxADDRS[f][r][a][tN] "
                        "spaces (f = fences, r = locked RMWs, a = "
                        "acquire/release/lwfence, tN = total-event cap; "
                        "default 2x3x2)")
    p.add_argument("--pairs", default=None, metavar="PAIRS",
                   help="comma list of STRONG:WEAK model pairs "
                        "(default: every lattice pair among "
                        "SC/370/x86/WMM)")
    p.add_argument("--limit", type=int, default=0,
                   help="stop a space after N distinct witnesses "
                        "(0 = exhaust it)")
    p.add_argument("--no-check", action="store_true",
                   help="skip the three-oracle cross-check (discovery "
                        "only; --promote refuses this)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the synthesis report as JSON")
    p.add_argument("--promote", action="store_true",
                   help="write new distinguishers into the generated "
                        "battery module (litmus/generated.py)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="target for --promote (default: the installed "
                        "repro.litmus/generated.py)")
    p.add_argument("--url", default=None,
                   help="scatter the search over a running "
                        "'repro serve' instead of searching in-process")
    p.add_argument("--chunks", type=int, default=8,
                   help="chunks per space when using --url")
    p.add_argument("--deadline", type=float, default=600.0,
                   help="--url waits this long for chunk jobs")
    p.add_argument("--http-timeout", type=float, default=60.0)
    p.add_argument("--http-retries", type=int, default=2)
    p.set_defaults(func=cmd_synth)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
