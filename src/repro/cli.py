"""Command-line interface: ``python -m repro <command>``.

Commands:

``list``                          benchmarks and litmus tests available
``litmus NAME``                   enumerate a litmus test under all models
``explain NAME -m MODEL k=v ...`` happens-before explanation of a witness
``compare NAME``                  ConsistencyChecker: 370 vs x86 diff
``sample NAME -m MODEL``          litmus7-style outcome sampling
``bench NAME [-p POLICY]``        run one benchmark, print its stats
``trace NAME [-p POLICY]``        run with full observability: Chrome
                                  trace JSON (Perfetto-loadable) +
                                  JSONL metrics + top-stalls summary
``sweep NAME [NAME ...]``         benchmarks under all 5 configs, in
                                  parallel, with on-disk result caching,
                                  per-job timeouts and bounded retries
``chaos``                         litmus conformance under deterministic
                                  fault injection (the chaos gate)
``lint [PATH ...]``               static determinism/zero-overhead
                                  discipline analysis (AST rules, see
                                  docs/STATIC_ANALYSIS.md) and, with
                                  ``--litmus``, the herd-style relation
                                  classifier cross-checked against the
                                  axiomatic enumerator

``bench`` and ``replay`` take ``--json`` (machine-readable stats) and
``--obs``/``--obs-out`` (histograms + gate intervals, optionally as
JSONL); ``sweep`` takes ``--obs``/``--obs-out`` to carry per-cell
observability summaries alongside the cached results.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.core.policies import POLICY_ORDER
from repro.litmus import (ALL_CASES, EXTRA_CASES, MODELS,
                          enumerate_outcomes, explain, sample)
from repro.resilience import DEFAULT_CHAOS as DEFAULT_CHAOS_SPEC
from repro.litmus.checker import compare
from repro.litmus.program import Program


def _litmus_registry() -> Dict[str, Program]:
    programs = {}
    for case in ALL_CASES + EXTRA_CASES:
        programs[case.program.name] = case.program
    return programs


def _find_program(name: str) -> Program:
    registry = _litmus_registry()
    if name not in registry:
        raise SystemExit(f"unknown litmus test {name!r}; try one of: "
                         + ", ".join(sorted(registry)))
    return registry[name]


def _parse_witness(pairs: List[str]) -> Dict[str, int]:
    witness = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"witness condition {pair!r} is not key=value")
        key, value = pair.split("=", 1)
        witness[key] = int(value)
    return witness


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_list(_args) -> int:
    from repro.workloads import PARALLEL_PROFILES, SEQUENTIAL_PROFILES
    print("litmus tests:")
    for name in sorted(_litmus_registry()):
        print(f"  {name}")
    print("\nparallel benchmarks (SPLASH-3 / PARSEC):")
    print("  " + ", ".join(PARALLEL_PROFILES))
    print("\nsequential benchmarks (SPECrate CPU2017):")
    print("  " + ", ".join(SEQUENTIAL_PROFILES))
    print("\nconfigurations: " + ", ".join(POLICY_ORDER))
    return 0


def cmd_litmus(args) -> int:
    program = _find_program(args.name)
    for tid, thread in enumerate(program.threads):
        print(f"T{tid}: " + " ; ".join(str(op) for op in thread))
    for model in (args.models or MODELS):
        try:
            outcomes = enumerate_outcomes(program, model)
        except ValueError as exc:
            print(f"\n{model}: {exc}")
            continue
        print(f"\n{model}: {len(outcomes)} outcomes")
        for outcome in sorted(outcomes, key=str):
            print(f"  {outcome}")
    return 0


def cmd_explain(args) -> int:
    program = _find_program(args.name)
    witness = _parse_witness(args.witness)
    if not witness:
        raise SystemExit("explain needs witness conditions (e.g. r0_rx=1)")
    print(explain(program, args.model, **witness))
    return 0


def cmd_compare(args) -> int:
    program = _find_program(args.name)
    print(compare(program).summary())
    return 0


def cmd_run_file(args) -> int:
    from repro.litmus.parser import LitmusParseError, parse_litmus_file
    try:
        parsed = parse_litmus_file(args.path)
    except (OSError, LitmusParseError) as exc:
        raise SystemExit(str(exc))
    program = parsed.program
    for tid, thread in enumerate(program.threads):
        print(f"T{tid}: " + " ; ".join(str(op) for op in thread))
    for model in (args.models or MODELS):
        try:
            outcomes = enumerate_outcomes(program, model)
        except ValueError as exc:
            print(f"\n{model}: {exc}")
            continue
        print(f"\n{model}: {len(outcomes)} outcomes")
        if parsed.witness is not None:
            from repro.litmus.operational import _matches
            hit = any(_matches(o, parsed.witness) for o in outcomes)
            print(f"  exists {parsed.witness}: "
                  f"{'ALLOWED' if hit else 'forbidden'}")
        else:
            for outcome in sorted(outcomes, key=str):
                print(f"  {outcome}")
    return 0


def cmd_sample(args) -> int:
    program = _find_program(args.name)
    report = sample(program, args.model, runs=args.runs, seed=args.seed)
    print(report.summary(top=args.top))
    return 0


def _emit_obs(report, stats, obs_out: Optional[str]) -> None:
    """Shared --obs tail for bench/replay: summary + optional JSONL."""
    from repro.analysis.report import top_stalls
    print(top_stalls(report, stats))
    if obs_out:
        n = report.write_jsonl(obs_out)
        print(f"wrote {obs_out}: {n} metric records")


def cmd_bench(args) -> int:
    obs = args.obs or bool(args.obs_out)
    if obs:
        from repro.workloads.runner import observe_benchmark
        result, report, _system = observe_benchmark(
            args.name, policy=args.policy, cores=args.cores,
            length=args.length, seed=args.seed)
    else:
        from repro.workloads.runner import run_benchmark
        result = run_benchmark(args.name, policy=args.policy,
                               cores=args.cores, length=args.length,
                               seed=args.seed)
    if args.json:
        print(result.stats.to_json(indent=2))
        if obs and args.obs_out:
            report.write_jsonl(args.obs_out)
        return 0
    total = result.stats.total
    print(f"{args.name} under {args.policy}: "
          f"{result.cycles} cycles, "
          f"{total.retired_instructions} instructions")
    print(f"  loads:          {total.loads_pct:6.2f}% of instructions")
    print(f"  forwarded (SLF):{total.forwarded_pct:6.2f}%")
    print(f"  gate stalls:    {total.gate_stalls_pct:6.3f}% "
          f"({total.avg_gate_stall_cycles:.1f} cycles each)")
    print(f"  re-executed:    {total.reexecuted_pct:6.3f}%")
    stalls = total.stall_pct
    print(f"  dispatch stalls: ROB {stalls['ROB']:.1f}%  "
          f"LQ {stalls['LQ']:.1f}%  SQ/SB {stalls['SQ/SB']:.1f}%")
    if obs:
        _emit_obs(report, result.stats, args.obs_out)
    return 0


def cmd_trace(args) -> int:
    from repro.obs.chrome_trace import write_chrome_trace
    from repro.obs.validate import validate_chrome_trace
    from repro.analysis.report import top_stalls
    from repro.workloads.runner import observe_benchmark

    result, report, system = observe_benchmark(
        args.name, policy=args.policy, cores=args.cores,
        length=args.length, seed=args.seed, trace_pipeline=True,
        sample_interval=args.sample_interval)
    out = args.out or f"{args.name}-{args.policy}.trace.json"
    trace = write_chrome_trace(out, system, report, result.stats)
    counts = validate_chrome_trace(trace)
    print(f"wrote {out}: {len(trace['traceEvents'])} events "
          f"({counts['X']} slices, {counts['C']} counter samples, "
          f"{counts['gate_slices']} gate intervals) — "
          f"load it at https://ui.perfetto.dev or chrome://tracing")
    metrics = args.metrics or f"{args.name}-{args.policy}.metrics.jsonl"
    n = report.write_jsonl(metrics)
    print(f"wrote {metrics}: {n} metric records")
    print()
    print(top_stalls(report, result.stats, top=args.top))
    return 0


def cmd_record(args) -> int:
    from repro.workloads import (generate_warmup, generate_workload,
                                 get_profile)
    from repro.workloads.tracefile import save_workload
    profile = get_profile(args.name)
    traces = generate_workload(profile, args.cores, args.length, args.seed)
    warm = generate_warmup(profile, args.cores, args.length, args.seed)
    save_workload(args.path, traces, warmup=warm,
                  meta={"benchmark": args.name, "seed": args.seed,
                        "length": args.length, "cores": args.cores})
    total = sum(len(t) for t in traces)
    print(f"wrote {args.path}: {len(traces)} cores, "
          f"{total} instructions (+warm-up)")
    return 0


def cmd_replay(args) -> int:
    from repro.workloads.tracefile import TraceFileError, load_workload
    try:
        traces, warmup, meta = load_workload(args.path)
    except (OSError, TraceFileError) as exc:
        raise SystemExit(str(exc))
    obs = args.obs or bool(args.obs_out)
    warm = warmup if warmup else True
    if obs:
        from repro.obs.session import observe_run
        stats, report, _system = observe_run(traces, args.policy,
                                             warm_caches=warm)
    else:
        from repro.sim.system import simulate
        stats = simulate(traces, args.policy, warm_caches=warm)
    if args.json:
        print(stats.to_json(indent=2))
        if obs and args.obs_out:
            report.write_jsonl(args.obs_out)
        return 0
    total = stats.total
    origin = f" (recorded from {meta['benchmark']})" \
        if "benchmark" in meta else ""
    print(f"replayed {args.path}{origin} under {args.policy}:")
    print(f"  {stats.execution_cycles} cycles, "
          f"{total.retired_instructions} instructions")
    print(f"  forwarded {total.forwarded_pct:.2f}%  "
          f"gate stalls {total.gate_stalls_pct:.3f}%  "
          f"re-executed {total.reexecuted_pct:.3f}%")
    if obs:
        _emit_obs(report, stats, args.obs_out)
    return 0


def cmd_sweep(args) -> int:
    import json

    from repro.sweep import SweepJob, run_sweep
    from repro.sweep.runner import stderr_progress
    from repro.workloads.runner import normalized_times

    obs = args.obs or bool(args.obs_out)
    jobs = [SweepJob(name=name, policy=policy, cores=args.cores,
                     length=args.length, seed=args.seed, obs=obs)
            for name in args.names for policy in POLICY_ORDER]
    outcome = run_sweep(jobs, workers=args.jobs, cache=not args.no_cache,
                        cache_dir=args.cache_dir,
                        progress=stderr_progress if args.verbose else None,
                        timeout=args.timeout, retries=args.retries)
    width = len(POLICY_ORDER)
    for i, name in enumerate(args.names):
        chunk = outcome.results[i * width:(i + 1) * width]
        results = dict(zip(POLICY_ORDER, chunk))
        ok = {p: r for p, r in results.items() if r is not None}
        # Normalization needs the x86 baseline cell; without it the
        # surviving cells are still printed, just in raw cycles.
        norm = normalized_times(ok) if "x86" in ok else {}
        print(f"{name}: execution time normalized to x86")
        for policy in POLICY_ORDER:
            cell = results[policy]
            if cell is None:
                err = outcome.errors[i * width + POLICY_ORDER.index(policy)]
                print(f"  {policy:16s} FAILED: {err['type']}: "
                      f"{err['message']}")
                continue
            ratio = f"{norm[policy]:5.3f}x" if policy in norm else "  n/a "
            line = f"  {policy:16s} {cell.cycles:9d} cycles ({ratio})"
            cell_obs = outcome.obs[i * width
                                   + POLICY_ORDER.index(policy)]
            if obs and cell_obs:
                gate = cell_obs.get("gate", {})
                line += (f"  [gate intervals: "
                         f"{gate.get('intervals', 0)}]")
            print(line)
    if args.obs_out:
        with open(args.obs_out, "w") as fh:
            for job, cell_obs in zip(jobs, outcome.obs):
                fh.write(json.dumps({"name": job.name,
                                     "policy": job.policy,
                                     "obs": cell_obs}) + "\n")
        print(f"wrote {args.obs_out}: {len(jobs)} per-cell obs records")
    if args.out:
        payload = {
            "jobs": [{"name": j.name, "policy": j.policy, "cores": j.cores,
                      "length": j.length, "seed": j.seed} for j in jobs],
            "cycles": [None if r is None else r.cycles
                       for r in outcome.results],
            "errors": outcome.errors,
            "failed": outcome.failed,
            "interrupted": outcome.interrupted,
            "simulated": outcome.simulated,
            "cached": outcome.cached,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.out}")
    if args.verbose:
        print(f"({outcome.simulated} simulated, {outcome.cached} cached, "
              f"{outcome.failed} failed, "
              f"{outcome.workers} worker(s), {outcome.elapsed:.1f}s)",
              file=sys.stderr)
    return 1 if (outcome.failed or outcome.interrupted) else 0


def cmd_chaos(args) -> int:
    import json

    from repro.resilience import DEFAULT_CHAOS, FaultSpec, run_chaos

    spec = FaultSpec(noc_jitter=args.noc_jitter,
                     noc_jitter_prob=args.noc_jitter_prob,
                     evict_period=args.evict_period,
                     squash_period=args.squash_period,
                     sb_delay=args.sb_delay,
                     sb_delay_prob=args.sb_delay_prob)
    progress = (lambda msg: print(msg, file=sys.stderr, flush=True)) \
        if args.verbose else None
    report = run_chaos(trials=args.trials, seed=args.seed, spec=spec,
                       policies=tuple(args.policies or POLICY_ORDER),
                       progress=progress)
    print(report.summary())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _changed_files(base: str) -> List[str]:
    """Python files differing from ``base`` (committed, staged or
    unstaged) plus untracked ones — the ``lint --changed`` file set."""
    import os
    import subprocess
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", base],
            capture_output=True, text=True, check=True)
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        raise SystemExit(f"--changed needs a git checkout with "
                         f"{base!r} resolvable: {detail.strip()}")
    names = diff.stdout.splitlines() + untracked.stdout.splitlines()
    return sorted({os.path.abspath(n) for n in names
                   if n.endswith(".py")})


def cmd_lint(args) -> int:
    import os

    from repro.lint import registered_rules, render_human, render_json, \
        run_lint

    if args.rules:
        for rule_id, rule in sorted(registered_rules().items()):
            print(f"{rule_id} [{rule.scope}]: {rule.summary}")
            print(f"    {rule.rationale}")
        return 0

    failed = False

    paths = args.paths or [os.path.dirname(os.path.abspath(
        sys.modules["repro"].__file__))]
    only_files = None
    if args.changed:
        only_files = set(_changed_files(args.base))
    try:
        report = run_lint(paths, rules=args.rule or None,
                          only_files=only_files)
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(render_human(report))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(render_json(report) + "\n")
        print(f"wrote {args.json}")
    if not report.ok:
        failed = True
    if args.strict:
        protected = report.suppressions_in(("sim", "cpu", "core"))
        for suppression in protected:
            print(f"{suppression.path}:{suppression.line}: strict: "
                  f"suppression not permitted in sim/cpu/core "
                  f"({', '.join(sorted(suppression.rules))})")
        if protected:
            failed = True

    if args.litmus or args.random:
        from repro.lint.memory_model import (cross_check_battery,
                                             cross_check_random,
                                             find_races)
        result = cross_check_battery()
        print(f"litmus cross-check: battery {result.programs_checked} "
              f"programs ({result.programs_skipped} rmw skipped), "
              f"{len(result.mismatches)} mismatches")
        if args.random:
            rand = cross_check_random(args.random, seed=args.seed)
            result.programs_checked += rand.programs_checked
            result.mismatches.extend(rand.mismatches)
            print(f"litmus cross-check: {rand.programs_checked} random "
                  f"programs (seed {args.seed}), "
                  f"{len(rand.mismatches)} mismatches")
        for mismatch in result.mismatches:
            print(f"  MISMATCH {mismatch}")
        races = []
        for case in ALL_CASES + EXTRA_CASES:
            try:
                race_report = find_races(case.program)
            except NotImplementedError:
                continue
            for race in race_report.races:
                races.append((case.program.name, race))
        print(f"store-atomicity races in the battery: {len(races)}")
        for name, race in races:
            print(f"  {name}: {race.shape} race, x86-allowed / "
                  f"370-forbidden: {race.outcome}")
        if args.litmus_json:
            import json
            payload = {
                "ok": result.ok,
                "programs_checked": result.programs_checked,
                "programs_skipped": result.programs_skipped,
                "mismatches": result.mismatches,
                "races": [{"program": name, "shape": race.shape,
                           "outcome": str(race.outcome),
                           "cycle": [f"{e.src}--{e.kind}-->{e.dst}"
                                     for e in race.witness.edges]}
                          for name, race in races],
            }
            with open(args.litmus_json, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"wrote {args.litmus_json}")
        if not result.ok:
            failed = True

    return 1 if failed else 0


# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speculative Enforcement of Store Atomicity "
                    "(MICRO 2020) — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="available tests/benchmarks") \
        .set_defaults(func=cmd_list)

    p = sub.add_parser("litmus", help="enumerate a litmus test")
    p.add_argument("name")
    p.add_argument("-m", "--models", nargs="*", choices=MODELS,
                   help="models to enumerate (default: all)")
    p.set_defaults(func=cmd_litmus)

    p = sub.add_parser("explain", help="happens-before explanation")
    p.add_argument("name")
    p.add_argument("-m", "--model", default="370",
                   choices=("SC", "370", "x86"))
    p.add_argument("-w", "--witness", nargs="+", default=[],
                   help="witness conditions, e.g. r0_rx=1 mem_x=1")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("compare", help="370 vs x86 ConsistencyChecker")
    p.add_argument("name")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("run-file", help="run a litmus test from a file")
    p.add_argument("path")
    p.add_argument("-m", "--models", nargs="*", choices=MODELS)
    p.set_defaults(func=cmd_run_file)

    p = sub.add_parser("sample", help="litmus7-style sampling")
    p.add_argument("name")
    p.add_argument("-m", "--model", default="x86", choices=MODELS)
    p.add_argument("-n", "--runs", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_sample)

    p = sub.add_parser("bench", help="run one benchmark profile")
    p.add_argument("name")
    p.add_argument("-p", "--policy", default="370-SLFSoS-key",
                   choices=POLICY_ORDER)
    p.add_argument("-c", "--cores", type=int, default=8)
    p.add_argument("-l", "--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="machine-readable stats (SystemStats.to_json)")
    p.add_argument("--obs", action="store_true",
                   help="attach the observability layer and print a "
                        "top-stalls summary")
    p.add_argument("--obs-out", default=None, metavar="PATH",
                   help="also write the obs metrics as JSONL "
                        "(implies --obs)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "trace",
        help="run one benchmark with full observability and emit a "
             "Perfetto-loadable Chrome trace + JSONL metrics")
    p.add_argument("name")
    p.add_argument("-p", "--policy", default="370-SLFSoS-key",
                   choices=POLICY_ORDER)
    p.add_argument("-c", "--cores", type=int, default=8)
    p.add_argument("-l", "--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--out", default=None,
                   help="Chrome trace JSON path "
                        "(default: NAME-POLICY.trace.json)")
    p.add_argument("--metrics", default=None,
                   help="metrics JSONL path "
                        "(default: NAME-POLICY.metrics.jsonl)")
    p.add_argument("--sample-interval", type=int, default=64,
                   help="occupancy sampling period in cycles")
    p.add_argument("--top", type=int, default=5,
                   help="gate intervals shown in the top-stalls summary")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("record", help="save a workload to a trace file")
    p.add_argument("name")
    p.add_argument("path")
    p.add_argument("-c", "--cores", type=int, default=8)
    p.add_argument("-l", "--length", type=int, default=3000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("replay", help="run a saved trace file")
    p.add_argument("path")
    p.add_argument("-p", "--policy", default="370-SLFSoS-key",
                   choices=POLICY_ORDER)
    p.add_argument("--json", action="store_true",
                   help="machine-readable stats (SystemStats.to_json)")
    p.add_argument("--obs", action="store_true",
                   help="attach the observability layer and print a "
                        "top-stalls summary")
    p.add_argument("--obs-out", default=None, metavar="PATH",
                   help="also write the obs metrics as JSONL "
                        "(implies --obs)")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "sweep",
        help="benchmarks under all five configurations "
             "(parallel across processes, results cached on disk)")
    p.add_argument("names", nargs="+", metavar="name")
    p.add_argument("-c", "--cores", type=int, default=8)
    p.add_argument("-l", "--length", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-j", "--jobs", type=int, default=None,
                   help="worker processes (default: $REPRO_WORKERS "
                        "or the CPU count)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the result cache")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: "
                        "$REPRO_SWEEP_CACHE or .sweep-cache)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="progress and cache statistics on stderr")
    p.add_argument("--obs", action="store_true",
                   help="carry per-cell observability summaries "
                        "(histograms, gate intervals) in the results")
    p.add_argument("--obs-out", default=None, metavar="PATH",
                   help="write per-cell obs summaries as JSONL "
                        "(implies --obs)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-job wall-clock budget in seconds; a cell "
                        "that blows it is a structured failure, not a "
                        "hung sweep")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts for failed cells (with "
                        "exponential backoff between rounds)")
    p.add_argument("-o", "--out", default=None, metavar="PATH",
                   help="write the full outcome, including per-cell "
                        "error payloads, as JSON")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "chaos",
        help="conformance under deterministic fault injection: the "
             "litmus battery with NoC jitter, forced evictions, spurious "
             "squashes and delayed SB drains — outcomes must stay within "
             "the axiomatic models")
    p.add_argument("--trials", type=int, default=25,
                   help="fault seeds per (test, policy) cell")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-p", "--policies", nargs="*", choices=POLICY_ORDER,
                   help="configurations to test (default: all five)")
    p.add_argument("--noc-jitter", type=int,
                   default=DEFAULT_CHAOS_SPEC.noc_jitter)
    p.add_argument("--noc-jitter-prob", type=float,
                   default=DEFAULT_CHAOS_SPEC.noc_jitter_prob)
    p.add_argument("--evict-period", type=int,
                   default=DEFAULT_CHAOS_SPEC.evict_period)
    p.add_argument("--squash-period", type=int,
                   default=DEFAULT_CHAOS_SPEC.squash_period)
    p.add_argument("--sb-delay", type=int,
                   default=DEFAULT_CHAOS_SPEC.sb_delay)
    p.add_argument("--sb-delay-prob", type=float,
                   default=DEFAULT_CHAOS_SPEC.sb_delay_prob)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full chaos report as JSON")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="per-cell progress on stderr")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "lint",
        help="static determinism/zero-overhead discipline analysis "
             "plus the herd-style litmus relation classifier "
             "(docs/STATIC_ANALYSIS.md)")
    p.add_argument("paths", nargs="*", metavar="path",
                   help="files or directories (default: the installed "
                        "repro package)")
    p.add_argument("--strict", action="store_true",
                   help="also fail on suppression comments inside "
                        "sim/cpu/core")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the machine-readable report as JSON")
    p.add_argument("--rule", action="append", default=None, metavar="ID",
                   help="run only this rule (repeatable)")
    p.add_argument("--rules", action="store_true",
                   help="list the registered rules and exit")
    p.add_argument("--changed", action="store_true",
                   help="restrict discipline rules to files differing "
                        "from --base (fast pre-commit mode)")
    p.add_argument("--base", default="main",
                   help="git ref for --changed (default: main)")
    p.add_argument("--litmus", action="store_true",
                   help="cross-check the static litmus classifier "
                        "against litmus/axiomatic.py on the battery and "
                        "report store-atomicity races")
    p.add_argument("--random", type=int, default=0, metavar="N",
                   help="also cross-check N seeded random programs "
                        "(implies --litmus)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for --random program generation")
    p.add_argument("--litmus-json", default=None, metavar="PATH",
                   help="write the cross-check/race report as JSON")
    p.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
