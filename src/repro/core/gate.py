"""The retire gate (paper Section IV-B, Figure 8).

The gate is deliberately tiny hardware: one open/closed bit plus one key
register.  A retiring SLF load whose forwarding store is still in the
SQ/SB closes the gate behind itself and locks it with the store's key;
loads at the head of the LQ cannot retire while the gate is closed.  The
gate reopens when it is unlocked with the *same* key — by the forwarding
store as it writes to the L1 (370-SLFSoS-key) — or unconditionally when
the store buffer drains (370-SLFSoS).

Invariant (paper Section IV-B-2): at most one load has closed the gate,
and exactly one live store matches the locking key.
"""

from __future__ import annotations

from typing import Optional


class RetireGate:
    """One open/closed bit and one key register.

    Beyond the architectural state, the gate keeps observability
    counters: episode counts (``closes``/``opens``) and lock *durations*
    — total closed cycles and a per-key breakdown — fed by the ``now``
    argument the policies pass from the engine clock.  ``now`` defaults
    to 0 so key-matching unit tests can exercise the state machine
    without a clock (durations then all land on key 0 of the clock,
    i.e. are meaningless, which is fine for those tests).
    """

    __slots__ = ("_closed", "_key", "_closed_at", "closes", "opens",
                 "lock_cycles", "lock_cycles_by_key")

    def __init__(self) -> None:
        self._closed = False
        self._key: Optional[int] = None
        self._closed_at = 0
        self.closes = 0
        self.opens = 0
        self.lock_cycles = 0
        self.lock_cycles_by_key: dict = {}

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def key(self) -> Optional[int]:
        return self._key

    def close(self, key: int, now: int = 0) -> None:
        """Lock the gate with ``key``.  Only legal when open: retirement
        is in order, so a second SLF load cannot retire (and hence cannot
        close the gate) while the gate is closed."""
        if self._closed:
            raise RuntimeError("retire gate is already closed")
        self._closed = True
        self._key = key
        self._closed_at = now
        self.closes += 1

    def _record_unlock(self, key: int, now: int) -> None:
        held = now - self._closed_at
        self.lock_cycles += held
        self.lock_cycles_by_key[key] = \
            self.lock_cycles_by_key.get(key, 0) + held

    def open_with_key(self, key: int, now: int = 0) -> bool:
        """A store exiting the SB presents its key; the gate opens only on
        a match.  Returns True if the gate opened."""
        if self._closed and self._key == key:
            self._record_unlock(key, now)
            self._closed = False
            self._key = None
            self.opens += 1
            return True
        return False

    def open_unconditionally(self, now: int = 0) -> bool:
        """Drain-based reopen (370-SLFSoS: the SB emptied)."""
        if self._closed:
            self._record_unlock(self._key, now)
            self._closed = False
            self._key = None
            self.opens += 1
            return True
        return False
