"""Retire-block reason codes shared by policies and the pipeline."""

#: A performed load at the ROB head is blocked by a closed retire gate
#: (370-SLFSoS / 370-SLFSoS-key).
GATE = "gate"

#: An SLF load is blocked at the head until the SB drains (370-SLFSpec).
SLF_SB = "slf-sb"
