"""The five consistency-model implementations compared in the paper.

Each policy plugs into the out-of-order pipeline at exactly the points
where the implementations differ:

* whether a load may take its value from an in-limbo store
  (:meth:`ConsistencyPolicy.allows_forwarding`);
* whether a performed load at the ROB head may retire
  (:meth:`load_retire_block`);
* what happens when an SLF load retires (:meth:`on_load_retire` — the
  SoS variants close the retire gate);
* what happens when a store writes to the L1 or the SB drains
  (:meth:`on_store_written` / :meth:`on_sb_drained` — gate reopening);
* which performed loads an invalidation/eviction squashes
  (:meth:`speculative_floor`).

Configurations (paper Section V):

``x86``            no store-atomicity enforcement (baseline).
``370-NoSpec``     blanket enforcement: a load matching a store in the
                   SQ/SB waits until that store writes to the L1.
``370-SLFSpec``    SC-like in-window speculation: SLF loads are
                   speculative and cannot retire until the SB drains.
``370-SLFSoS``     SLF loads are the *source* of speculation: they
                   retire, closing the retire gate; the gate reopens
                   when the SB drains.
``370-SLFSoS-key`` the paper's proposal: the gate is locked with the
                   forwarding store's key and reopens as soon as *that*
                   store writes to the L1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple, Type

from repro.core.gate import RetireGate
from repro.core.reasons import GATE, SLF_SB
from repro.obs.bus import NULL_BUS
from repro.cpu.load_queue import LoadEntry
from repro.cpu.store_buffer import StoreEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.pipeline import Core



class ConsistencyPolicy:
    """Base class: x86 semantics (forwarding allowed, nothing enforced)."""

    name = "x86"
    allows_forwarding = True
    store_atomic = False

    __slots__ = ("core",)

    def __init__(self) -> None:
        self.core: Optional["Core"] = None

    def attach(self, core: "Core") -> None:
        self.core = core

    # -- forwarding ----------------------------------------------------

    def on_forward(self, load: LoadEntry, store: StoreEntry) -> None:
        """A load was satisfied from the SQ/SB: record SLF state + key
        (paper Section IV-B-1)."""
        load.slf = True
        load.key = store.key
        load.store_seq = store.seq

    # -- retirement ----------------------------------------------------

    def load_retire_block(self, load: LoadEntry) -> Optional[str]:
        """Why a performed load at the ROB head may not retire, if any."""
        return None

    def on_load_retire(self, load: LoadEntry) -> None:
        """Called as a load retires (before it leaves the LQ)."""

    # -- store-buffer events --------------------------------------------

    def on_store_written(self, store: StoreEntry) -> None:
        """A store was inserted in memory order (wrote to the L1)."""

    def on_sb_drained(self) -> None:
        """The SB portion of the SQ/SB emptied (all retired stores
        written)."""

    def on_squash(self, seq: int) -> None:
        """The pipeline flushed everything from ``seq`` onwards."""

    # -- invalidation/eviction squash scope ------------------------------

    def speculative_floor(self) -> Tuple[Optional[int], bool]:
        """Policy-specific speculation threshold for squash decisions.

        Returns ``(floor_seq, inclusive)``: performed loads with
        ``seq > floor_seq`` (or ``>=`` when inclusive) are speculative
        under this policy *in addition to* the universal M-speculation
        rule (performed past an older unperformed load).  ``(None, _)``
        means no additional speculation.
        """
        return None, False


class X86Policy(ConsistencyPolicy):
    """x86-TSO: store-to-load forwarding with no store-atomicity
    enforcement; only load-load reordering is speculated in-window."""

    name = "x86"
    __slots__ = ()


class NoSpecPolicy(ConsistencyPolicy):
    """370-NoSpec: blanket store atomicity, as in the IBM 370.

    Forwarding is disallowed; a load that matches a store in the SQ/SB
    is not performed until the store buffer is drained at least up to
    the matched store (paper Sections I, II-C).
    """

    name = "370-NoSpec"
    allows_forwarding = False
    store_atomic = True
    __slots__ = ()


class SLFSpecPolicy(ConsistencyPolicy):
    """370-SLFSpec: straightforward adoption of in-window SC speculation.

    SLF loads are *speculative by definition* (the prevailing view the
    paper argues against): an SLF load cannot retire until every older
    store has exited the store buffer, and it is squashed if matched by
    an invalidation or eviction in the meantime.
    """

    name = "370-SLFSpec"
    store_atomic = True
    __slots__ = ()

    def load_retire_block(self, load: LoadEntry) -> Optional[str]:
        if load.slf and self.core.sb.has_unwritten_older(load.seq):
            return SLF_SB
        return None

    def speculative_floor(self) -> Tuple[Optional[int], bool]:
        # The oldest still-speculative SLF load; it and everything
        # younger is squashable (inclusive).
        for entry in self.core.lq:
            if (entry.performed and entry.slf
                    and self.core.sb.has_unwritten_older(entry.seq)):
                return entry.seq, True
        return None, False


class _SoSBase(ConsistencyPolicy):
    """Shared machinery for the source-of-speculation variants.

    The SLF load is *not* speculative (the paper's key insight,
    Section IV-A); it retires freely and closes the retire gate behind
    itself if its forwarding store is still in the SQ/SB.  Younger loads
    are SA-speculative while an *active forwarding* from an older SLF
    load exists, and cannot retire while the gate is closed.
    """

    store_atomic = True

    __slots__ = ("gate", "active_forwardings", "_p_gate_close",
                 "_p_gate_open", "_engine")

    def __init__(self) -> None:
        super().__init__()
        self.gate = RetireGate()
        # key -> seq of the (oldest) SLF load forwarded from that store.
        self.active_forwardings: Dict[int, int] = {}
        self._p_gate_close = None
        self._p_gate_open = None
        self._engine = None

    def attach(self, core: "Core") -> None:
        super().attach(core)
        # getattr: policy unit tests attach to stub cores that carry
        # only the structures the hooks touch (no bus, no engine).
        bus = getattr(core, "probe_bus", NULL_BUS)
        self._p_gate_close = bus.resolve("gate.close")
        self._p_gate_open = bus.resolve("gate.open")
        self._engine = getattr(core, "engine", None)

    def _now(self) -> int:
        engine = self._engine
        return engine.now if engine is not None else 0

    def _fire_open(self, key: int, reason: str) -> None:
        if self._p_gate_open is not None:
            self._p_gate_open(self.core.core_id, self._now(), key, reason)

    def on_forward(self, load: LoadEntry, store: StoreEntry) -> None:
        # Base on_forward inlined (SLF state), then the forwarding is
        # recorded as active — one call per forwarded load.
        load.slf = True
        key = store.key
        load.key = key
        load.store_seq = store.seq
        previous = self.active_forwardings.get(key)
        if previous is None or load.seq < previous:
            self.active_forwardings[key] = load.seq

    def load_retire_block(self, load: LoadEntry) -> Optional[str]:
        # Direct slot read (not the ``closed`` property): this runs for
        # every performed load reaching the ROB head under SoS policies.
        return GATE if self.gate._closed else None

    def on_load_retire(self, load: LoadEntry) -> None:
        if load.slf and load.key is not None:
            # A (slot, sorting-bit) key recycles once the slot has been
            # deallocated twice, so the live entry under this key may be
            # a *younger* aliased store rather than the forwarding
            # store.  Closing the gate on the alias deadlocks: the
            # aliased store sits un-retirable behind the gate-blocked
            # load, and no SB drain is pending to reopen the gate.
            # Confirm the identity by sequence number before closing.
            store = self.core.sb.entry_for_key(load.key)
            if store is None or store.seq != load.store_seq \
                    or store.written:
                return
            now = self._now()
            self.gate.close(load.key, now)
            self.core.stats.gate_closes += 1
            if self._p_gate_close is not None:
                self._p_gate_close(self.core.core_id, now, load.key,
                                   load.seq)

    def on_squash(self, seq: int) -> None:
        """Forwardings whose SLF load was flushed are no longer real."""
        stale = [key for key, slf_seq in self.active_forwardings.items()
                 if slf_seq >= seq]
        for key in stale:
            del self.active_forwardings[key]

    def speculative_floor(self) -> Tuple[Optional[int], bool]:
        if not self.active_forwardings:
            return None, False
        # Strictly younger loads than the oldest source of speculation
        # are SA-speculative; the SLF load itself is not (exclusive).
        return min(self.active_forwardings.values()), False


class SLFSoSPolicy(_SoSBase):
    """370-SLFSoS: gate reopens when the SB drains (no key)."""

    name = "370-SLFSoS"
    __slots__ = ()

    def on_sb_drained(self) -> None:
        # Fast-path the open-gate case: drain events are frequent and
        # the clock only needs reading when the gate actually reopens.
        gate = self.gate
        if gate._closed:
            key = gate._key
            gate.open_unconditionally(self._now())
            self._fire_open(key, "drain")
        self.active_forwardings.clear()


class SLFSoSKeyPolicy(_SoSBase):
    """370-SLFSoS-key: the paper's proposal — the gate is keyed, so it
    reopens as soon as the *forwarding* store writes to the L1."""

    name = "370-SLFSoS-key"
    __slots__ = ()

    def on_store_written(self, store: StoreEntry) -> None:
        # Fast-path the no-match case (gate open, or locked with another
        # key) so the common store write costs two slot reads and a pop;
        # open_with_key re-checks under the same condition.
        key = store.key
        gate = self.gate
        if gate._closed and gate._key == key:
            gate.open_with_key(key, self._now())
            self._fire_open(key, "key")
        self.active_forwardings.pop(key, None)

    def on_sb_drained(self) -> None:
        # Belt and braces: every store write already lifted its own
        # forwardings, so nothing should remain when the SB is empty.
        if self.gate.closed:  # pragma: no cover - defensive
            key = self.gate.key
            self.gate.open_unconditionally(self._now())
            self._fire_open(key, "drain")
        self.active_forwardings.clear()


#: Registry of all five configurations, keyed by paper name.
POLICIES: Dict[str, Type[ConsistencyPolicy]] = {
    policy.name: policy
    for policy in (X86Policy, NoSpecPolicy, SLFSpecPolicy,
                   SLFSoSPolicy, SLFSoSKeyPolicy)
}

#: Evaluation order used throughout the paper's figures.
POLICY_ORDER = ["x86", "370-NoSpec", "370-SLFSpec", "370-SLFSoS",
                "370-SLFSoS-key"]


def make_policy(name: str) -> ConsistencyPolicy:
    """Instantiate a policy by its paper name (see :data:`POLICY_ORDER`)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {POLICY_ORDER}") from None
