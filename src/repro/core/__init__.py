"""The paper's contribution: retire gate, SA-speculation, and the five
consistency-model implementations (x86, 370-NoSpec, 370-SLFSpec,
370-SLFSoS, 370-SLFSoS-key)."""

from repro.core.gate import RetireGate
from repro.core.policies import (POLICIES, POLICY_ORDER, ConsistencyPolicy,
                                 NoSpecPolicy, SLFSoSKeyPolicy, SLFSoSPolicy,
                                 SLFSpecPolicy, X86Policy, make_policy)
from repro.core.violation import ViolationDetector

__all__ = ["RetireGate", "ConsistencyPolicy", "X86Policy", "NoSpecPolicy",
           "SLFSpecPolicy", "SLFSoSPolicy", "SLFSoSKeyPolicy",
           "make_policy", "POLICIES", "POLICY_ORDER", "ViolationDetector"]
