"""Store-atomicity violation witness (for the non-store-atomic x86).

The paper's Figures 6 and 7 define the *invalidation window of
vulnerability*: store atomicity is observably violated when

1. a load ``ld x`` was performed by forwarding from an in-limbo store
   ``st x``;
2. a younger load ``ld y`` (different cache line) performed and
   **retired** while ``st x`` was still in the store buffer; and
3. an invalidation (or eviction) for ``ld y``'s line arrives before
   ``st x`` is written to the L1.

On x86 nothing stops this — that is precisely the non-store-atomic
behaviour of Sections III-A/III-B.  This detector counts such witnessed
windows so that tests and examples can demonstrate that (a) x86 exhibits
them and (b) every 370 configuration exhibits none (their gating or
squashing makes condition 2 or 3 unsatisfiable).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.cpu.load_queue import LoadEntry
from repro.cpu.store_buffer import StoreEntry


class ViolationDetector:
    """Tracks retired loads inside open windows of vulnerability."""

    __slots__ = ("line_bytes", "_forwardings", "_store_lines",
                 "_windows", "violations")

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        # store key -> seq of its (oldest) SLF load.
        self._forwardings: Dict[int, int] = {}
        # store key -> line of the store itself (to exclude self-hits).
        self._store_lines: Dict[int, int] = {}
        # store key -> lines of loads retired under its shadow.
        self._windows: Dict[int, Set[int]] = {}
        self.violations = 0

    # ------------------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def on_forward(self, load: LoadEntry, store: StoreEntry) -> None:
        key = store.key
        previous = self._forwardings.get(key)
        if previous is None or load.seq < previous:
            self._forwardings[key] = load.seq
            self._store_lines[key] = self._line(store.addr)

    def on_load_retired(self, load: LoadEntry) -> None:
        """Condition 2: a load retires inside an open window."""
        if load.addr < 0:
            return
        line = self._line(load.addr)
        for key, slf_seq in self._forwardings.items():
            if slf_seq < load.seq and self._store_lines.get(key) != line:
                self._windows.setdefault(key, set()).add(line)

    def on_store_written(self, store: StoreEntry) -> None:
        """The window closes when the forwarding store hits the L1."""
        self._forwardings.pop(store.key, None)
        self._store_lines.pop(store.key, None)
        self._windows.pop(store.key, None)

    def on_squash(self, seq: int) -> None:
        """Forwardings from flushed SLF loads never happened."""
        stale = [key for key, slf_seq in self._forwardings.items()
                 if slf_seq >= seq]
        for key in stale:
            self._forwardings.pop(key, None)
            self._store_lines.pop(key, None)
            self._windows.pop(key, None)

    def on_line_removed(self, line: int) -> None:
        """Condition 3: an invalidation/eviction lands in a window."""
        for key, lines in list(self._windows.items()):
            if line in lines:
                self.violations += 1
                lines.discard(line)
                if not lines:
                    del self._windows[key]
